"""Common result value objects shared by all flow / reachability estimators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.types import VertexId


@dataclass(frozen=True)
class ReachabilityEstimate:
    """Estimate of ``P(Q ↔ v)`` for a single vertex pair.

    Attributes
    ----------
    probability:
        Point estimate of the reachability probability.
    n_samples:
        Number of Monte-Carlo samples behind the estimate, or ``None``
        for exact / analytic values.
    successes:
        Number of samples in which the pair was connected (``None`` for
        exact values).
    """

    probability: float
    n_samples: Optional[int] = None
    successes: Optional[int] = None

    @property
    def is_exact(self) -> bool:
        """True when the estimate came from an exact or analytic computation."""
        return self.n_samples is None


@dataclass(frozen=True)
class FlowEstimate:
    """Estimate of the expected information flow ``E[flow(Q, G)]``.

    Attributes
    ----------
    expected_flow:
        Point estimate of the expected flow.
    reachability:
        Per-vertex reachability probabilities that the flow aggregates
        (may be empty for estimators that only track the total).
    n_samples:
        Sample count (``None`` for exact / analytic estimates).
    variance:
        Sample variance of the per-world flow, when available.
    include_query:
        Whether the query vertex's own weight is included in the total.
    """

    expected_flow: float
    reachability: Dict[VertexId, float] = field(default_factory=dict)
    n_samples: Optional[int] = None
    variance: Optional[float] = None
    include_query: bool = False

    @property
    def is_exact(self) -> bool:
        """True when the estimate came from an exact or analytic computation."""
        return self.n_samples is None

    @property
    def standard_error(self) -> Optional[float]:
        """Standard error of the flow estimate, when a sample variance is known."""
        if self.variance is None or not self.n_samples:
            return None
        return (self.variance / self.n_samples) ** 0.5

"""Exact two-terminal reliability by the factoring (edge contraction/deletion) method.

The classic alternative to brute-force world enumeration (Colbourn, *The
Combinatorics of Network Reliability*, cited as [5] by the paper): pick
an edge ``e`` and condition on its state,

``R(G) = p(e) · R(G / e)  +  (1 - p(e)) · R(G - e)``

where ``G / e`` contracts the edge (it certainly exists) and ``G - e``
deletes it.  Together with reductions that prune irrelevant edges and a
memoization table keyed by the canonical remaining structure, this is
exponential in the worst case but handles far larger graphs than the
``2^|E|`` enumeration — and provides an independent oracle for the
Monte-Carlo and F-tree estimators in the test suite.

Only two-terminal reliability (``source`` ↔ ``target``) is provided;
the expected-flow computation of the library aggregates per-vertex
reliabilities through the F-tree instead.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.algorithms.union_find import UnionFind
from repro.exceptions import VertexNotFoundError
from repro.graph.uncertain_graph import UncertainGraph
from repro.types import Edge, VertexId

#: Soft limit on the number of factoring recursions; prevents accidental
#: exponential blow-ups on dense graphs (raise it explicitly if needed).
DEFAULT_RECURSION_BUDGET = 2_000_000


class FactoringBudgetExceeded(RuntimeError):
    """Raised when the factoring recursion exceeds its node budget."""


def two_terminal_reliability(
    graph: UncertainGraph,
    source: VertexId,
    target: VertexId,
    edges: Optional[Iterable[Edge]] = None,
    recursion_budget: int = DEFAULT_RECURSION_BUDGET,
) -> float:
    """Exact probability that ``source`` and ``target`` are connected.

    Parameters
    ----------
    graph:
        The uncertain graph.
    source, target:
        The two terminals.
    edges:
        Optional restriction to a subset of edges.
    recursion_budget:
        Maximum number of factoring steps before
        :class:`FactoringBudgetExceeded` is raised.
    """
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    if not graph.has_vertex(target):
        raise VertexNotFoundError(target)
    if source == target:
        return 1.0
    edge_list = list(graph.edges()) if edges is None else list(edges)
    probabilities = {edge: graph.probability(edge) for edge in edge_list}
    state = _State(probabilities)
    solver = _FactoringSolver(recursion_budget)
    return solver.solve(state, source, target)


class _State:
    """A partially contracted graph: edge probabilities over merged super-vertices."""

    __slots__ = ("edges",)

    def __init__(self, edges: Dict[Edge, float]) -> None:
        # parallel edges produced by contraction are merged on the fly:
        # two parallel edges with probabilities p and q behave like one
        # edge with probability 1 - (1-p)(1-q)
        self.edges: Dict[Edge, float] = {}
        for edge, probability in edges.items():
            self._add(edge, probability)

    def _add(self, edge: Edge, probability: float) -> None:
        existing = self.edges.get(edge)
        if existing is None:
            self.edges[edge] = probability
        else:
            self.edges[edge] = 1.0 - (1.0 - existing) * (1.0 - probability)

    def key(self, source: VertexId, target: VertexId) -> Tuple:
        """Canonical memoization key for this state and terminal pair."""
        return (
            frozenset((edge, round(probability, 12)) for edge, probability in self.edges.items()),
            source,
            target,
        )

    def without(self, edge: Edge) -> "_State":
        """Return the state with ``edge`` deleted."""
        remaining = dict(self.edges)
        remaining.pop(edge, None)
        clone = _State.__new__(_State)
        clone.edges = remaining
        return clone

    def contracted(self, edge: Edge, into: VertexId) -> "_State":
        """Return the state with ``edge`` contracted: both endpoints become ``into``."""
        other = edge.u if edge.v == into else edge.v
        merged: Dict[Edge, float] = {}
        clone = _State.__new__(_State)
        clone.edges = merged
        for existing, probability in self.edges.items():
            if existing == edge:
                continue
            endpoints = [into if vertex == other else vertex for vertex in existing]
            if endpoints[0] == endpoints[1]:
                continue  # self loop after contraction: irrelevant for reliability
            clone._add(Edge(endpoints[0], endpoints[1]), probability)
        return clone


class _FactoringSolver:
    """Recursive contraction/deletion with memoization and relevance pruning."""

    def __init__(self, recursion_budget: int) -> None:
        self.recursion_budget = recursion_budget
        self.steps = 0
        self._memo: Dict[Tuple, float] = {}

    def solve(self, state: _State, source: VertexId, target: VertexId) -> float:
        self.steps += 1
        if self.steps > self.recursion_budget:
            raise FactoringBudgetExceeded(
                f"factoring exceeded {self.recursion_budget} recursion steps"
            )
        if source == target:
            return 1.0
        relevant = self._relevant_edges(state, source, target)
        if relevant is None:
            return 0.0  # terminals are in different components
        if not relevant:
            return 0.0
        key = (frozenset((e, round(p, 12)) for e, p in relevant.items()), source, target)
        cached = self._memo.get(key)
        if cached is not None:
            return cached

        pruned = _State.__new__(_State)
        pruned.edges = dict(relevant)
        # choose a factoring edge incident to the source: contraction then
        # shrinks the terminal pair quickly
        pivot = self._pick_pivot(pruned, source)
        probability = pruned.edges[pivot]
        if pivot.is_incident_to(source) and pivot.is_incident_to(target):
            # contracting the pivot merges the two terminals
            reliability_if_present = 1.0
        else:
            # keep the terminal's name when the pivot touches one, so the
            # terminal pair survives the contraction unchanged
            if pivot.is_incident_to(source):
                keep_vertex = source
            elif pivot.is_incident_to(target):
                keep_vertex = target
            else:
                keep_vertex = pivot.u
            contracted = pruned.contracted(pivot, into=keep_vertex)
            reliability_if_present = self.solve(contracted, source, target)
        reliability_if_absent = self.solve(pruned.without(pivot), source, target)
        result = probability * reliability_if_present + (1.0 - probability) * reliability_if_absent
        self._memo[key] = result
        return result

    @staticmethod
    def _pick_pivot(state: _State, source: VertexId) -> Edge:
        for edge in state.edges:
            if edge.is_incident_to(source):
                return edge
        return next(iter(state.edges))

    @staticmethod
    def _relevant_edges(
        state: _State, source: VertexId, target: VertexId
    ) -> Optional[Dict[Edge, float]]:
        """Keep only edges in the connected component containing both terminals.

        Returns ``None`` when the terminals are disconnected even with
        every edge present (reliability is zero).
        """
        union = UnionFind()
        union.add(source)
        union.add(target)
        for edge in state.edges:
            union.union(edge.u, edge.v)
        if not union.connected(source, target):
            return None
        component_root = union.find(source)
        return {
            edge: probability
            for edge, probability in state.edges.items()
            if union.find(edge.u) == component_root
        }

"""Possible-world semantics for uncertain graphs.

A *possible world* (paper Section 3) is a deterministic graph obtained
from an :class:`~repro.graph.uncertain_graph.UncertainGraph` by keeping a
subset of its edges; the world occurs with the realization probability of
Equation 1.  This module provides:

* :class:`PossibleWorld` — a lightweight deterministic graph with fast
  connectivity queries, used by every Monte-Carlo estimator;
* :func:`enumerate_worlds` — exhaustive enumeration of all ``2^|E<1|``
  worlds, used by the exact estimators and by the test suite as ground
  truth;
* :func:`sample_world` / :func:`sample_worlds` — unbiased world sampling.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Set, Tuple

from repro.exceptions import ExactEnumerationError, VertexNotFoundError
from repro.graph.uncertain_graph import UncertainGraph
from repro.rng import SeedLike, ensure_rng
from repro.types import Edge, VertexId

#: Hard ceiling on exhaustive enumeration: 2^20 worlds (~1M) keeps the
#: exact estimators usable in tests without ever running away.
DEFAULT_ENUMERATION_LIMIT = 20


class PossibleWorld:
    """A deterministic realisation of an uncertain graph.

    The world shares vertex identities (and weights, via the parent
    graph) with the uncertain graph it was drawn from and stores only the
    surviving edges.
    """

    __slots__ = ("_adjacency", "_edges", "probability")

    def __init__(
        self,
        vertices: Iterable[VertexId],
        edges: Iterable[Edge],
        probability: Optional[float] = None,
    ) -> None:
        self._adjacency: Dict[VertexId, Set[VertexId]] = {v: set() for v in vertices}
        self._edges: Set[Edge] = set()
        #: Realization probability Pr(g) when known (None for sampled worlds).
        self.probability = probability
        for edge in edges:
            self.add_edge(edge)

    # ------------------------------------------------------------------
    def add_edge(self, edge: Edge) -> None:
        """Add a surviving edge to the world (endpoints must exist)."""
        for vertex in edge:
            if vertex not in self._adjacency:
                raise VertexNotFoundError(vertex)
        self._adjacency[edge.u].add(edge.v)
        self._adjacency[edge.v].add(edge.u)
        self._edges.add(edge)

    def has_edge(self, u: VertexId, v: VertexId) -> bool:
        """Return True if the edge survived in this world."""
        return v in self._adjacency.get(u, ())

    def edges(self) -> FrozenSet[Edge]:
        """Return the set of surviving edges."""
        return frozenset(self._edges)

    def vertices(self) -> Iterator[VertexId]:
        """Iterate over the vertices of the world."""
        return iter(self._adjacency)

    def neighbors(self, vertex: VertexId) -> Set[VertexId]:
        """Return the neighbours of ``vertex`` in this world."""
        try:
            return self._adjacency[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    @property
    def n_edges(self) -> int:
        """Number of surviving edges."""
        return len(self._edges)

    # ------------------------------------------------------------------
    def reachable_from(self, source: VertexId) -> Set[VertexId]:
        """Return all vertices connected to ``source`` (including itself)."""
        if source not in self._adjacency:
            raise VertexNotFoundError(source)
        seen = {source}
        queue = deque([source])
        while queue:
            current = queue.popleft()
            for neighbor in self._adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        return seen

    def is_reachable(self, source: VertexId, target: VertexId) -> bool:
        """Return True if a path connects ``source`` and ``target`` in this world."""
        if target not in self._adjacency:
            raise VertexNotFoundError(target)
        if source == target:
            return True
        return target in self.reachable_from(source)

    def flow_to(
        self,
        query: VertexId,
        weights: Dict[VertexId, float],
        include_query: bool = False,
    ) -> float:
        """Return the information flow to ``query`` in this deterministic world.

        This is ``flow(Q, g)`` of Lemma 1: the sum of weights of vertices
        reachable from the query vertex.
        """
        reached = self.reachable_from(query)
        if not include_query:
            reached = reached - {query}
        return float(sum(weights.get(v, 0.0) for v in reached))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<PossibleWorld: {len(self._adjacency)} vertices, {len(self._edges)} edges>"


# ----------------------------------------------------------------------
# world construction helpers
# ----------------------------------------------------------------------
def sample_world(graph: UncertainGraph, seed: SeedLike = None) -> PossibleWorld:
    """Draw one unbiased possible world from ``graph``."""
    surviving = graph.sample_edge_set(seed)
    return PossibleWorld(graph.vertices(), surviving)


def sample_worlds(
    graph: UncertainGraph, n_samples: int, seed: SeedLike = None
) -> Iterator[PossibleWorld]:
    """Yield ``n_samples`` independent possible worlds drawn from ``graph``."""
    rng = ensure_rng(seed)
    edges = list(graph.probabilities().items())
    vertices = list(graph.vertices())
    for _ in range(n_samples):
        if edges:
            draws = rng.random(len(edges))
            surviving = [edge for (edge, p), r in zip(edges, draws) if r < p]
        else:
            surviving = []
        yield PossibleWorld(vertices, surviving)


def world_probability(graph: UncertainGraph, world: PossibleWorld) -> float:
    """Return the realization probability ``Pr(g)`` (Equation 1) of ``world``."""
    return graph.world_probability(world.edges())


def enumerate_worlds(
    graph: UncertainGraph,
    limit: int = DEFAULT_ENUMERATION_LIMIT,
) -> Iterator[Tuple[PossibleWorld, float]]:
    """Enumerate every possible world of ``graph`` with its probability.

    Certain edges (probability exactly one) are present in every world and
    do not multiply the enumeration space, exactly as in the paper's
    ``2^|E<1|`` count.

    Parameters
    ----------
    graph:
        The uncertain graph to enumerate.
    limit:
        Maximum number of *uncertain* edges; enumeration over more than
        ``2**limit`` worlds raises :class:`ExactEnumerationError`.

    Yields
    ------
    (world, probability) pairs whose probabilities sum to one.
    """
    uncertain = graph.uncertain_edges()
    certain = [e for e in graph.edges() if graph.probability(e) >= 1.0]
    if len(uncertain) > limit:
        raise ExactEnumerationError(len(uncertain), limit)
    vertices = list(graph.vertices())
    probabilities = [graph.probability(e) for e in uncertain]
    for mask in itertools.product((False, True), repeat=len(uncertain)):
        probability = 1.0
        surviving = list(certain)
        for edge, p, present in zip(uncertain, probabilities, mask):
            if present:
                probability *= p
                surviving.append(edge)
            else:
                probability *= 1.0 - p
        yield PossibleWorld(vertices, surviving, probability=probability), probability

"""Synthetic uncertain-graph generators.

These reproduce the data-generation schemes of the paper's evaluation
(Section 7.1):

* :func:`erdos_renyi_graph` — the *Erdős* scheme without locality
  assumption: edges distributed independently and uniformly, edge
  probabilities uniform in ``(0, 1]``, integer vertex weights uniform in
  ``[0, 10]``.
* :func:`partitioned_graph` — the *partitioned* scheme with locality
  assumption: vertices arranged in a ring of partitions of size ``d``,
  each vertex connected to all vertices of the neighbouring partitions,
  giving a controllable diameter.
* :func:`wsn_graph` — the *WSN* scheme: vertices placed uniformly in the
  unit square, connected whenever their Euclidean distance is below
  ``eps``.
* :func:`grid_road_graph` — a road-network-style planar grid with
  distance-decay edge probabilities (surrogate for the San Joaquin road
  network, see DESIGN.md §4).
* :func:`social_circle_graph` — a dense social graph where each vertex
  has a few high-probability "close friends" and many low-probability
  acquaintances (surrogate for the Facebook circles dataset).
* :func:`collaboration_graph` — a union of random cliques (surrogate for
  the DBLP co-authorship graph).
* :func:`preferential_attachment_graph` — a sparse heavy-tailed graph
  (surrogate for the YouTube friendship graph).

Plus deterministic toy graphs (:func:`path_graph`, :func:`cycle_graph`,
:func:`star_graph`, :func:`complete_graph`) used in examples and tests.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.graph.uncertain_graph import UncertainGraph
from repro.rng import SeedLike, ensure_rng

#: Smallest probability assigned by generators; the model requires p > 0.
_MIN_PROBABILITY = 1e-9


def _uniform_probability(rng: np.random.Generator) -> float:
    """Draw an edge probability uniformly from (0, 1]."""
    return float(max(_MIN_PROBABILITY, rng.random()))


def _assign_weights(
    graph: UncertainGraph,
    rng: np.random.Generator,
    weight_range: Tuple[float, float] = (0.0, 10.0),
    integer_weights: bool = True,
) -> None:
    """Assign vertex weights uniformly from ``weight_range`` (paper default [0, 10])."""
    low, high = weight_range
    for vertex in list(graph.vertices()):
        if integer_weights:
            weight = float(rng.integers(int(low), int(high) + 1))
        else:
            weight = float(rng.uniform(low, high))
        graph.set_weight(vertex, weight)


# ----------------------------------------------------------------------
# paper generators
# ----------------------------------------------------------------------
def erdos_renyi_graph(
    n_vertices: int,
    average_degree: float = 6.0,
    seed: SeedLike = None,
    weight_range: Tuple[float, float] = (0.0, 10.0),
    connect: bool = True,
    name: str = "erdos",
) -> UncertainGraph:
    """Generate an Erdős–Rényi-style uncertain graph (no locality).

    ``average_degree`` controls the expected vertex degree; edges are
    sampled uniformly among all vertex pairs.  When ``connect`` is True a
    random spanning tree is added first so that every vertex can, in
    principle, be reached from the query vertex, mirroring the paper's
    use of connected candidate graphs.

    Parameters
    ----------
    n_vertices:
        Number of vertices (identified by ``0 .. n_vertices - 1``).
    average_degree:
        Target expected degree; the number of edges is
        ``n_vertices * average_degree / 2``.
    seed:
        Random seed or generator.
    weight_range:
        Uniform integer range for vertex weights (paper uses [0, 10]).
    connect:
        Add a random spanning tree before random edges.
    """
    if n_vertices <= 0:
        raise ValueError(f"n_vertices must be positive, got {n_vertices}")
    rng = ensure_rng(seed)
    graph = UncertainGraph(name=name)
    for v in range(n_vertices):
        graph.add_vertex(v, weight=1.0)

    if connect and n_vertices > 1:
        order = [int(vertex) for vertex in rng.permutation(n_vertices)]
        for i in range(1, n_vertices):
            parent = order[int(rng.integers(0, i))]
            graph.add_edge(order[i], parent, _uniform_probability(rng))

    target_edges = int(round(n_vertices * average_degree / 2.0))
    max_edges = n_vertices * (n_vertices - 1) // 2
    target_edges = min(target_edges, max_edges)
    attempts = 0
    max_attempts = 50 * max(target_edges, 1)
    while graph.n_edges < target_edges and attempts < max_attempts:
        attempts += 1
        u = int(rng.integers(0, n_vertices))
        v = int(rng.integers(0, n_vertices))
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v, _uniform_probability(rng))
    _assign_weights(graph, rng, weight_range)
    return graph


def partitioned_graph(
    n_vertices: int,
    degree: int = 6,
    seed: SeedLike = None,
    weight_range: Tuple[float, float] = (0.0, 10.0),
    name: str = "partitioned",
) -> UncertainGraph:
    """Generate the paper's *partitioned* locality graph.

    The vertex set is split into ``n = 2 * n_vertices / degree``
    partitions of size ``degree / 2`` arranged on a ring; every vertex of
    partition ``P_i`` is connected to all vertices of ``P_(i-1)`` and
    ``P_(i+1)`` (modulo ``n``), so every vertex has degree ``degree`` and
    the diameter of the network is ``n - 1``.

    Parameters
    ----------
    n_vertices:
        Number of vertices.
    degree:
        Target degree of every vertex; must be an even integer ≥ 2.
    """
    if n_vertices <= 0:
        raise ValueError(f"n_vertices must be positive, got {n_vertices}")
    if degree < 2 or degree % 2 != 0:
        raise ValueError(f"degree must be an even integer >= 2, got {degree}")
    rng = ensure_rng(seed)
    partition_size = degree // 2
    n_partitions = max(2, n_vertices // partition_size)
    graph = UncertainGraph(name=name)
    total = n_partitions * partition_size
    for v in range(total):
        graph.add_vertex(v, weight=1.0)

    def partition_members(index: int) -> range:
        start = (index % n_partitions) * partition_size
        return range(start, start + partition_size)

    for i in range(n_partitions):
        for u in partition_members(i):
            for v in partition_members(i + 1):
                if not graph.has_edge(u, v):
                    graph.add_edge(u, v, _uniform_probability(rng))
    _assign_weights(graph, rng, weight_range)
    return graph


def wsn_graph(
    n_vertices: int,
    eps: float = 0.05,
    seed: SeedLike = None,
    weight_range: Tuple[float, float] = (0.0, 10.0),
    name: str = "wsn",
) -> UncertainGraph:
    """Generate a wireless-sensor-network random geometric graph.

    Vertices receive uniform coordinates in the unit square and are
    connected whenever their Euclidean distance is at most ``eps``; edge
    probabilities are uniform in (0, 1] as in the paper (Section 7.1,
    "WSN" scheme).  Vertex coordinates are returned as part of the graph
    name-spaced attributes only implicitly (via vertex ids ordered by
    generation); callers needing coordinates should use
    :func:`wsn_graph_with_positions`.
    """
    graph, _ = wsn_graph_with_positions(
        n_vertices, eps=eps, seed=seed, weight_range=weight_range, name=name
    )
    return graph


def wsn_graph_with_positions(
    n_vertices: int,
    eps: float = 0.05,
    seed: SeedLike = None,
    weight_range: Tuple[float, float] = (0.0, 10.0),
    name: str = "wsn",
) -> Tuple[UncertainGraph, dict]:
    """Like :func:`wsn_graph` but also return the vertex coordinates."""
    if n_vertices <= 0:
        raise ValueError(f"n_vertices must be positive, got {n_vertices}")
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    rng = ensure_rng(seed)
    positions = rng.random((n_vertices, 2))
    graph = UncertainGraph(name=name)
    for v in range(n_vertices):
        graph.add_vertex(v, weight=1.0)
    # simple grid bucketing so generation stays near-linear for small eps
    cell = max(eps, 1e-6)
    buckets: dict[Tuple[int, int], list[int]] = {}
    for v in range(n_vertices):
        key = (int(positions[v, 0] / cell), int(positions[v, 1] / cell))
        buckets.setdefault(key, []).append(v)
    for (cx, cy), members in buckets.items():
        neighbors: list[int] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                neighbors.extend(buckets.get((cx + dx, cy + dy), ()))
        for u in members:
            for v in neighbors:
                if v <= u or graph.has_edge(u, v):
                    continue
                distance = float(np.linalg.norm(positions[u] - positions[v]))
                if distance <= eps:
                    graph.add_edge(u, v, _uniform_probability(rng))
    _assign_weights(graph, rng, weight_range)
    coordinates = {v: (float(positions[v, 0]), float(positions[v, 1])) for v in range(n_vertices)}
    return graph, coordinates


def grid_road_graph(
    rows: int,
    cols: int,
    cell_length_m: float = 500.0,
    decay_per_m: float = 0.001,
    perturbation: float = 0.2,
    seed: SeedLike = None,
    weight_range: Tuple[float, float] = (0.0, 10.0),
    name: str = "road-grid",
) -> UncertainGraph:
    """Generate a planar road-style grid with distance-decay probabilities.

    Serves as a surrogate for the San Joaquin County road network: the
    vertices are road intersections on a jittered grid, the edges connect
    orthogonal neighbours, and the communication probability of an edge
    of physical length ``d`` metres is ``exp(-decay_per_m * d)`` — the
    exact probability law the paper applies to the real road network.

    Parameters
    ----------
    rows, cols:
        Grid dimensions; the graph has ``rows * cols`` vertices.
    cell_length_m:
        Nominal distance between adjacent intersections in metres.
    decay_per_m:
        Exponential decay constant (paper uses 0.001 per metre).
    perturbation:
        Relative jitter applied to intersection coordinates.
    """
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    rng = ensure_rng(seed)
    graph = UncertainGraph(name=name)
    positions: dict[int, Tuple[float, float]] = {}
    for r in range(rows):
        for c in range(cols):
            vertex = r * cols + c
            jitter_x = rng.uniform(-perturbation, perturbation) * cell_length_m
            jitter_y = rng.uniform(-perturbation, perturbation) * cell_length_m
            positions[vertex] = (c * cell_length_m + jitter_x, r * cell_length_m + jitter_y)
            graph.add_vertex(vertex, weight=1.0)
    for r in range(rows):
        for c in range(cols):
            vertex = r * cols + c
            for dr, dc in ((0, 1), (1, 0)):
                nr, nc = r + dr, c + dc
                if nr >= rows or nc >= cols:
                    continue
                neighbor = nr * cols + nc
                ax, ay = positions[vertex]
                bx, by = positions[neighbor]
                distance = math.hypot(ax - bx, ay - by)
                probability = max(_MIN_PROBABILITY, math.exp(-decay_per_m * distance))
                graph.add_edge(vertex, neighbor, min(1.0, probability))
    _assign_weights(graph, rng, weight_range)
    return graph


def social_circle_graph(
    n_vertices: int,
    average_degree: float = 20.0,
    close_friends: int = 10,
    close_probability_range: Tuple[float, float] = (0.5, 1.0),
    distant_probability_range: Tuple[float, float] = (1e-6, 0.5),
    seed: SeedLike = None,
    weight_range: Tuple[float, float] = (0.0, 10.0),
    name: str = "social-circle",
) -> UncertainGraph:
    """Generate a dense social-circle graph (Facebook-circles surrogate).

    Each vertex receives ``close_friends`` incident edges re-weighted
    with a high probability drawn from ``close_probability_range`` while
    all remaining edges get a probability from
    ``distant_probability_range`` — exactly the re-weighting scheme the
    paper applies to the Facebook snapshot (Section 7.1).
    """
    if n_vertices <= 2:
        raise ValueError("social_circle_graph needs at least 3 vertices")
    rng = ensure_rng(seed)
    graph = erdos_renyi_graph(
        n_vertices,
        average_degree=average_degree,
        seed=rng,
        weight_range=weight_range,
        connect=True,
        name=name,
    )
    low, high = distant_probability_range
    for edge in graph.edges():
        graph.set_probability(edge.u, edge.v, float(max(_MIN_PROBABILITY, rng.uniform(low, high))))
    close_low, close_high = close_probability_range
    for vertex in graph.vertices():
        incident = list(graph.incident_edges(vertex))
        if not incident:
            continue
        chosen = rng.permutation(len(incident))[: min(close_friends, len(incident))]
        for index in chosen:
            edge = incident[int(index)]
            graph.set_probability(edge.u, edge.v, float(rng.uniform(close_low, close_high)))
    return graph


def collaboration_graph(
    n_vertices: int,
    n_papers: Optional[int] = None,
    authors_per_paper: Tuple[int, int] = (2, 5),
    seed: SeedLike = None,
    weight_range: Tuple[float, float] = (0.0, 10.0),
    name: str = "collaboration",
) -> UncertainGraph:
    """Generate a clique-composition collaboration graph (DBLP surrogate).

    Each "paper" selects a random set of authors and connects them into a
    clique, reproducing the clustering structure of co-authorship graphs.
    Edge probabilities are uniform in (0, 1].
    """
    if n_vertices <= 2:
        raise ValueError("collaboration_graph needs at least 3 vertices")
    rng = ensure_rng(seed)
    if n_papers is None:
        n_papers = int(n_vertices * 1.5)
    graph = UncertainGraph(name=name)
    for v in range(n_vertices):
        graph.add_vertex(v, weight=1.0)
    low, high = authors_per_paper
    for _ in range(n_papers):
        size = int(rng.integers(low, high + 1))
        authors = rng.choice(n_vertices, size=min(size, n_vertices), replace=False)
        for i in range(len(authors)):
            for j in range(i + 1, len(authors)):
                u, v = int(authors[i]), int(authors[j])
                if not graph.has_edge(u, v):
                    graph.add_edge(u, v, _uniform_probability(rng))
    # ensure a connected candidate graph by chaining isolated vertices
    previous = None
    for vertex in range(n_vertices):
        if graph.degree(vertex) == 0:
            anchor = previous if previous is not None else (vertex + 1) % n_vertices
            if anchor != vertex and not graph.has_edge(vertex, anchor):
                graph.add_edge(vertex, anchor, _uniform_probability(rng))
        previous = vertex
    _assign_weights(graph, rng, weight_range)
    return graph


def preferential_attachment_graph(
    n_vertices: int,
    edges_per_vertex: int = 3,
    seed: SeedLike = None,
    weight_range: Tuple[float, float] = (0.0, 10.0),
    name: str = "preferential-attachment",
) -> UncertainGraph:
    """Generate a sparse heavy-tailed graph (YouTube surrogate).

    Standard Barabási–Albert preferential attachment: each new vertex
    attaches to ``edges_per_vertex`` existing vertices chosen with
    probability proportional to their degree.  Edge probabilities are
    uniform in (0, 1].
    """
    if n_vertices <= edges_per_vertex:
        raise ValueError("n_vertices must exceed edges_per_vertex")
    if edges_per_vertex < 1:
        raise ValueError("edges_per_vertex must be at least 1")
    rng = ensure_rng(seed)
    graph = UncertainGraph(name=name)
    for v in range(n_vertices):
        graph.add_vertex(v, weight=1.0)
    # initial clique over the first (edges_per_vertex + 1) vertices
    repeated: list[int] = []
    seed_size = edges_per_vertex + 1
    for u in range(seed_size):
        for v in range(u + 1, seed_size):
            graph.add_edge(u, v, _uniform_probability(rng))
            repeated.extend((u, v))
    for new_vertex in range(seed_size, n_vertices):
        targets: set[int] = set()
        while len(targets) < edges_per_vertex:
            pick = repeated[int(rng.integers(0, len(repeated)))]
            if pick != new_vertex:
                targets.add(pick)
        for target in targets:
            graph.add_edge(new_vertex, target, _uniform_probability(rng))
            repeated.extend((new_vertex, target))
    _assign_weights(graph, rng, weight_range)
    return graph


# ----------------------------------------------------------------------
# deterministic toy graphs (examples and tests)
# ----------------------------------------------------------------------
def path_graph(
    n_vertices: int, probability: float = 0.5, weight: float = 1.0, name: str = "path"
) -> UncertainGraph:
    """Return a path ``0 - 1 - ... - (n-1)`` with uniform edge probability."""
    graph = UncertainGraph(name=name)
    for v in range(n_vertices):
        graph.add_vertex(v, weight=weight)
    for v in range(n_vertices - 1):
        graph.add_edge(v, v + 1, probability)
    return graph


def cycle_graph(
    n_vertices: int, probability: float = 0.5, weight: float = 1.0, name: str = "cycle"
) -> UncertainGraph:
    """Return a cycle over ``n_vertices`` vertices with uniform edge probability."""
    if n_vertices < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    graph = path_graph(n_vertices, probability=probability, weight=weight, name=name)
    graph.add_edge(n_vertices - 1, 0, probability)
    return graph


def star_graph(
    n_leaves: int, probability: float = 0.5, weight: float = 1.0, name: str = "star"
) -> UncertainGraph:
    """Return a star with centre ``0`` and leaves ``1 .. n_leaves``."""
    graph = UncertainGraph(name=name)
    graph.add_vertex(0, weight=weight)
    for leaf in range(1, n_leaves + 1):
        graph.add_vertex(leaf, weight=weight)
        graph.add_edge(0, leaf, probability)
    return graph


def complete_graph(
    n_vertices: int, probability: float = 0.5, weight: float = 1.0, name: str = "complete"
) -> UncertainGraph:
    """Return a complete graph with uniform edge probability."""
    graph = UncertainGraph(name=name)
    for v in range(n_vertices):
        graph.add_vertex(v, weight=weight)
    for u in range(n_vertices):
        for v in range(u + 1, n_vertices):
            graph.add_edge(u, v, probability)
    return graph

"""Graph transformations used when preparing experiments.

These helpers never mutate their input; they return new
:class:`~repro.graph.uncertain_graph.UncertainGraph` instances so that an
experiment can derive several variants (re-weighted, re-scaled, locally
restricted) from one base graph without side effects.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.exceptions import VertexNotFoundError
from repro.graph.uncertain_graph import UncertainGraph
from repro.rng import SeedLike, ensure_rng
from repro.types import Edge, VertexId


def scale_probabilities(graph: UncertainGraph, factor: float, name: str = "") -> UncertainGraph:
    """Return a copy with every edge probability multiplied by ``factor`` (clamped to (0, 1]).

    Useful for studying how link reliability shifts the Dijkstra/F-tree
    trade-off on otherwise identical topologies.
    """
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor!r}")
    result = graph.copy(name=name or f"{graph.name}-scaled")
    for edge in result.edges():
        scaled = min(1.0, max(1e-12, graph.probability(edge) * factor))
        result.set_probability(edge.u, edge.v, scaled)
    return result


def set_uniform_weights(graph: UncertainGraph, weight: float = 1.0, name: str = "") -> UncertainGraph:
    """Return a copy where every vertex has the same information weight."""
    result = graph.copy(name=name or f"{graph.name}-uniform-weights")
    for vertex in result.vertices():
        result.set_weight(vertex, weight)
    return result


def normalize_weights(graph: UncertainGraph, total: float = 1.0, name: str = "") -> UncertainGraph:
    """Return a copy whose vertex weights sum to ``total`` (proportions preserved).

    Graphs whose weights sum to zero are returned with uniform weights
    ``total / |V|`` instead.
    """
    result = graph.copy(name=name or f"{graph.name}-normalized")
    current_total = graph.total_weight()
    n_vertices = graph.n_vertices
    if n_vertices == 0:
        return result
    for vertex in result.vertices():
        if current_total > 0:
            result.set_weight(vertex, graph.weight(vertex) * total / current_total)
        else:
            result.set_weight(vertex, total / n_vertices)
    return result


def reweight_vertices(
    graph: UncertainGraph,
    weight_fn: Callable[[VertexId], float],
    name: str = "",
) -> UncertainGraph:
    """Return a copy whose vertex weights are ``weight_fn(vertex)``."""
    result = graph.copy(name=name or f"{graph.name}-reweighted")
    for vertex in result.vertices():
        result.set_weight(vertex, float(weight_fn(vertex)))
    return result


def perturb_probabilities(
    graph: UncertainGraph,
    noise: float = 0.05,
    seed: SeedLike = None,
    name: str = "",
) -> UncertainGraph:
    """Return a copy with uniform multiplicative noise on the edge probabilities.

    Models imperfect knowledge of the link reliabilities; used by
    robustness experiments.
    """
    if noise < 0:
        raise ValueError(f"noise must be non-negative, got {noise!r}")
    rng = ensure_rng(seed)
    result = graph.copy(name=name or f"{graph.name}-perturbed")
    for edge in result.edges():
        factor = 1.0 + float(rng.uniform(-noise, noise))
        perturbed = min(1.0, max(1e-12, graph.probability(edge) * factor))
        result.set_probability(edge.u, edge.v, perturbed)
    return result


def ego_subgraph(
    graph: UncertainGraph,
    center: VertexId,
    hops: int,
    name: str = "",
) -> UncertainGraph:
    """Return the subgraph induced by all vertices within ``hops`` of ``center``.

    Handy for extracting a query vertex's local neighbourhood from a
    large network before running the (frontier-bounded) selection
    algorithms on it.
    """
    if not graph.has_vertex(center):
        raise VertexNotFoundError(center)
    if hops < 0:
        raise ValueError(f"hops must be non-negative, got {hops!r}")
    distances: Dict[VertexId, int] = {center: 0}
    frontier = [center]
    for depth in range(1, hops + 1):
        next_frontier = []
        for vertex in frontier:
            for neighbor in graph.neighbors(vertex):
                if neighbor not in distances:
                    distances[neighbor] = depth
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return graph.vertex_subgraph(distances, name=name or f"{graph.name}-ego-{hops}")


def largest_component_subgraph(graph: UncertainGraph, name: str = "") -> UncertainGraph:
    """Return the subgraph induced by the largest connected component."""
    from repro.algorithms.traversal import connected_components

    components = connected_components(graph)
    if not components:
        return graph.copy(name=name or graph.name)
    largest = max(components, key=len)
    return graph.vertex_subgraph(largest, name=name or f"{graph.name}-lcc")


def merge_graphs(
    first: UncertainGraph,
    second: UncertainGraph,
    bridge_edges: Optional[Dict[Edge, float]] = None,
    name: str = "merged",
) -> UncertainGraph:
    """Disjoint-union two graphs (vertex ids must not overlap), optionally bridging them.

    Raises
    ------
    ValueError
        If the two graphs share vertex identifiers.
    """
    overlap = set(first.vertices()) & set(second.vertices())
    if overlap:
        raise ValueError(f"graphs share vertex identifiers: {sorted(map(repr, overlap))[:5]}")
    merged = first.copy(name=name)
    for vertex in second.vertices():
        merged.add_vertex(vertex, weight=second.weight(vertex))
    for edge in second.edges():
        merged.add_edge(edge.u, edge.v, second.probability(edge))
    for edge, probability in (bridge_edges or {}).items():
        merged.add_edge(edge.u, edge.v, probability)
    return merged

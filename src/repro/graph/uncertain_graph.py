"""The probabilistic (uncertain) graph model.

An :class:`UncertainGraph` is the tuple ``G = (V, E, W, P)`` of the paper
(Section 3, Definition of the probabilistic graph model):

* ``V`` — a set of vertices, each carrying a non-negative information
  weight ``W(v)``;
* ``E`` — a set of undirected edges, each existing *independently* with
  probability ``P(e) ∈ (0, 1]``.

The class is a plain adjacency-map graph with probability and weight
attributes; all heavy algorithms live in :mod:`repro.algorithms`,
:mod:`repro.reachability` and :mod:`repro.ftree`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, Mapping, Optional, Set, Tuple

from repro.exceptions import (
    DuplicateEdgeError,
    DuplicateVertexError,
    EdgeNotFoundError,
    InvalidProbabilityError,
    InvalidWeightError,
    SelfLoopError,
    VertexNotFoundError,
)
from repro.digest import graph_digest
from repro.rng import SeedLike, ensure_rng
from repro.types import Edge, EdgePair, VertexId, as_edge


class UncertainGraph:
    """An undirected probabilistic graph with vertex weights.

    Parameters
    ----------
    name:
        Optional human-readable name, carried through generators and
        datasets and used by the experiment reporting code.

    Notes
    -----
    Vertices may be any hashable objects.  Edges are undirected and are
    normalised through :class:`repro.types.Edge`; parallel edges and
    self-loops are rejected because neither contributes to reachability
    probabilities under possible-world semantics.
    """

    __slots__ = ("name", "_adjacency", "_weights", "_probabilities", "_digest")

    def __init__(self, name: str = "") -> None:
        self.name = name
        #: vertex -> {neighbor vertex, ...}
        self._adjacency: Dict[VertexId, Set[VertexId]] = {}
        #: vertex -> information weight
        self._weights: Dict[VertexId, float] = {}
        #: Edge -> existence probability
        self._probabilities: Dict[Edge, float] = {}
        #: memoized content digest; every mutator resets it to None
        self._digest: Optional[int] = None

    def content_digest(self) -> int:
        """Stable 128-bit digest of the graph content (memoized).

        Identical to :func:`repro.digest.graph_digest` but computed at
        most once between mutations: every mutator drops the memo, so
        the digest-keyed caches (world batches, graph layouts, query
        plans) can key on graph content without paying an ``O(V + E)``
        hash per call.  ``__slots__`` guarantees content can only change
        through the mutator methods, which keeps the memo honest.
        """
        if self._digest is None:
            self._digest = graph_digest(self)
        return self._digest

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[VertexId, VertexId, float]],
        weights: Optional[Mapping[VertexId, float]] = None,
        default_weight: float = 1.0,
        name: str = "",
    ) -> "UncertainGraph":
        """Build a graph from ``(u, v, probability)`` triples.

        Vertices mentioned by any edge are created implicitly with
        ``default_weight`` unless ``weights`` provides an explicit value.
        ``weights`` may also mention isolated vertices that appear in no
        edge.
        """
        graph = cls(name=name)
        weights = dict(weights or {})
        for u, v, probability in edges:
            for vertex in (u, v):
                if not graph.has_vertex(vertex):
                    graph.add_vertex(vertex, weight=weights.get(vertex, default_weight))
            graph.add_edge(u, v, probability)
        for vertex, weight in weights.items():
            if not graph.has_vertex(vertex):
                graph.add_vertex(vertex, weight=weight)
        return graph

    def copy(self, name: Optional[str] = None) -> "UncertainGraph":
        """Return a deep copy of the graph (vertex identities are shared)."""
        clone = UncertainGraph(name=self.name if name is None else name)
        clone._adjacency = {v: set(nbrs) for v, nbrs in self._adjacency.items()}
        clone._weights = dict(self._weights)
        clone._probabilities = dict(self._probabilities)
        # identical content ⇒ identical digest; share the memo if computed
        clone._digest = self._digest
        return clone

    # ------------------------------------------------------------------
    # vertices
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: VertexId, weight: float = 1.0) -> None:
        """Add a vertex with the given information weight.

        Raises
        ------
        DuplicateVertexError
            If the vertex already exists.
        InvalidWeightError
            If the weight is negative, NaN or infinite.
        """
        if vertex in self._adjacency:
            raise DuplicateVertexError(vertex)
        _check_weight(weight)
        self._adjacency[vertex] = set()
        self._weights[vertex] = float(weight)
        self._digest = None

    def remove_vertex(self, vertex: VertexId) -> None:
        """Remove a vertex and every edge incident to it."""
        if vertex not in self._adjacency:
            raise VertexNotFoundError(vertex)
        for neighbor in list(self._adjacency[vertex]):
            self.remove_edge(vertex, neighbor)
        del self._adjacency[vertex]
        del self._weights[vertex]
        self._digest = None

    def has_vertex(self, vertex: VertexId) -> bool:
        """Return True if the vertex exists in the graph."""
        return vertex in self._adjacency

    def vertices(self) -> Iterator[VertexId]:
        """Iterate over all vertices (insertion order)."""
        return iter(self._adjacency)

    def weight(self, vertex: VertexId) -> float:
        """Return the information weight ``W(vertex)``."""
        try:
            return self._weights[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def set_weight(self, vertex: VertexId, weight: float) -> None:
        """Update the information weight of an existing vertex."""
        if vertex not in self._weights:
            raise VertexNotFoundError(vertex)
        _check_weight(weight)
        self._weights[vertex] = float(weight)
        self._digest = None

    def weights(self) -> Dict[VertexId, float]:
        """Return a copy of the vertex-weight mapping."""
        return dict(self._weights)

    def total_weight(self, exclude: Iterable[VertexId] = ()) -> float:
        """Return the sum of all vertex weights, optionally excluding some vertices."""
        excluded = set(exclude)
        return float(
            sum(w for v, w in self._weights.items() if v not in excluded)
        )

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------
    def add_edge(
        self,
        u: VertexId,
        v: VertexId,
        probability: float,
        create_vertices: bool = False,
        default_weight: float = 1.0,
    ) -> Edge:
        """Add an undirected edge that exists with ``probability``.

        Parameters
        ----------
        u, v:
            Edge endpoints.  Must already exist unless ``create_vertices``
            is True.
        probability:
            Existence probability in ``(0, 1]`` (paper Section 3).
        create_vertices:
            When True, missing endpoints are created with ``default_weight``.

        Returns
        -------
        Edge
            The canonical edge object that was stored.
        """
        if u == v:
            raise SelfLoopError(u)
        _check_probability(probability)
        for vertex in (u, v):
            if vertex not in self._adjacency:
                if create_vertices:
                    self.add_vertex(vertex, weight=default_weight)
                else:
                    raise VertexNotFoundError(vertex)
        edge = Edge(u, v)
        if edge in self._probabilities:
            raise DuplicateEdgeError(u, v)
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._probabilities[edge] = float(probability)
        self._digest = None
        return edge

    def remove_edge(self, u: VertexId, v: VertexId) -> None:
        """Remove the edge between ``u`` and ``v``."""
        edge = Edge(u, v)
        if edge not in self._probabilities:
            raise EdgeNotFoundError(u, v)
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        del self._probabilities[edge]
        self._digest = None

    def has_edge(self, u: VertexId, v: VertexId) -> bool:
        """Return True if an edge between ``u`` and ``v`` exists."""
        if u == v:
            return False
        try:
            return Edge(u, v) in self._probabilities
        except ValueError:
            return False

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges (insertion order)."""
        return iter(self._probabilities)

    def edge_list(self) -> list[Edge]:
        """Return all edges as a list."""
        return list(self._probabilities)

    def probability(self, u: "VertexId | Edge", v: Optional[VertexId] = None) -> float:
        """Return the existence probability of an edge.

        Accepts either ``probability(edge)`` or ``probability(u, v)``.
        """
        edge = u if isinstance(u, Edge) and v is None else Edge(u, v)  # type: ignore[arg-type]
        try:
            return self._probabilities[edge]
        except KeyError:
            raise EdgeNotFoundError(edge.u, edge.v) from None

    def set_probability(self, u: VertexId, v: VertexId, probability: float) -> None:
        """Update the existence probability of an existing edge."""
        edge = Edge(u, v)
        if edge not in self._probabilities:
            raise EdgeNotFoundError(u, v)
        _check_probability(probability)
        self._probabilities[edge] = float(probability)
        self._digest = None

    def probabilities(self) -> Dict[Edge, float]:
        """Return a copy of the edge-probability mapping."""
        return dict(self._probabilities)

    def uncertain_edges(self) -> list[Edge]:
        """Return edges with probability strictly below one.

        These are the only edges that enlarge the possible-world space
        (the paper counts ``2^|E<1|`` possible worlds).
        """
        return [e for e, p in self._probabilities.items() if p < 1.0]

    # ------------------------------------------------------------------
    # neighbourhood queries
    # ------------------------------------------------------------------
    def neighbors(self, vertex: VertexId) -> Iterator[VertexId]:
        """Iterate over the neighbours of ``vertex``."""
        try:
            return iter(self._adjacency[vertex])
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def degree(self, vertex: VertexId) -> int:
        """Return the number of edges incident to ``vertex``."""
        try:
            return len(self._adjacency[vertex])
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def incident_edges(self, vertex: VertexId) -> Iterator[Edge]:
        """Iterate over the edges incident to ``vertex``."""
        if vertex not in self._adjacency:
            raise VertexNotFoundError(vertex)
        for neighbor in self._adjacency[vertex]:
            yield Edge(vertex, neighbor)

    def average_degree(self) -> float:
        """Return the average vertex degree (0.0 for the empty graph)."""
        if not self._adjacency:
            return 0.0
        return 2.0 * len(self._probabilities) / len(self._adjacency)

    # ------------------------------------------------------------------
    # subgraphs
    # ------------------------------------------------------------------
    def edge_subgraph(
        self,
        edges: Iterable["Edge | EdgePair"],
        keep_all_vertices: bool = True,
        name: str = "",
    ) -> "UncertainGraph":
        """Return the subgraph containing only the given edges.

        Parameters
        ----------
        edges:
            Edges to retain; every edge must exist in this graph.
        keep_all_vertices:
            When True (the default, matching ``MaxFlow``'s definition of a
            subgraph ``G' = (V, E' ⊆ E, W, P)``) every vertex of the
            original graph is kept even if isolated; when False only the
            endpoints of the retained edges are kept.
        """
        subgraph = UncertainGraph(name=name or self.name)
        selected = [as_edge(e) for e in edges]
        for edge in selected:
            if edge not in self._probabilities:
                raise EdgeNotFoundError(edge.u, edge.v)
        if keep_all_vertices:
            for vertex in self._adjacency:
                subgraph.add_vertex(vertex, weight=self._weights[vertex])
        else:
            for edge in selected:
                for vertex in edge:
                    if not subgraph.has_vertex(vertex):
                        subgraph.add_vertex(vertex, weight=self._weights[vertex])
        for edge in selected:
            if not subgraph.has_edge(edge.u, edge.v):
                subgraph.add_edge(edge.u, edge.v, self._probabilities[edge])
        return subgraph

    def vertex_subgraph(self, vertices: Iterable[VertexId], name: str = "") -> "UncertainGraph":
        """Return the subgraph induced by ``vertices`` (all edges among them)."""
        keep = set(vertices)
        for vertex in keep:
            if vertex not in self._adjacency:
                raise VertexNotFoundError(vertex)
        subgraph = UncertainGraph(name=name or self.name)
        for vertex in keep:
            subgraph.add_vertex(vertex, weight=self._weights[vertex])
        for edge, probability in self._probabilities.items():
            if edge.u in keep and edge.v in keep:
                subgraph.add_edge(edge.u, edge.v, probability)
        return subgraph

    # ------------------------------------------------------------------
    # possible-world sampling
    # ------------------------------------------------------------------
    def sample_edge_set(self, seed: SeedLike = None) -> Set[Edge]:
        """Sample one possible world and return the set of surviving edges.

        Each edge survives independently with its probability (unbiased
        possible-world sampling, Lemma 1 of the paper).
        """
        rng = ensure_rng(seed)
        edges = list(self._probabilities.items())
        if not edges:
            return set()
        draws = rng.random(len(edges))
        return {edge for (edge, p), r in zip(edges, draws) if r < p}

    def log_world_probability(self, surviving_edges: Iterable["Edge | EdgePair"]) -> float:
        """Return the log-probability of the possible world with exactly these edges.

        Missing edges contribute ``log(1 - p)``; a world that omits a
        certain edge (``p == 1``) has probability zero, i.e. ``-inf``.
        """
        surviving = {as_edge(e) for e in surviving_edges}
        for edge in surviving:
            if edge not in self._probabilities:
                raise EdgeNotFoundError(edge.u, edge.v)
        log_probability = 0.0
        for edge, p in self._probabilities.items():
            if edge in surviving:
                log_probability += math.log(p)
            else:
                if p >= 1.0:
                    return float("-inf")
                log_probability += math.log1p(-p)
        return log_probability

    def world_probability(self, surviving_edges: Iterable["Edge | EdgePair"]) -> float:
        """Return ``Pr(g)`` of the possible world with exactly these edges (Equation 1)."""
        log_probability = self.log_world_probability(surviving_edges)
        if log_probability == float("-inf"):
            return 0.0
        return math.exp(log_probability)

    # ------------------------------------------------------------------
    # dunder methods
    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        """Number of vertices."""
        return len(self._adjacency)

    @property
    def n_edges(self) -> int:
        """Number of edges."""
        return len(self._probabilities)

    def __len__(self) -> int:
        return len(self._adjacency)

    def __contains__(self, vertex: VertexId) -> bool:
        return vertex in self._adjacency

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UncertainGraph):
            return NotImplemented
        return (
            self._weights == other._weights
            and self._probabilities == other._probabilities
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<UncertainGraph{label}: {self.n_vertices} vertices, "
            f"{self.n_edges} edges>"
        )


def _check_probability(probability: float) -> None:
    """Validate an edge probability (must lie in (0, 1])."""
    if not isinstance(probability, (int, float)) or isinstance(probability, bool):
        raise InvalidProbabilityError(probability)
    if math.isnan(probability) or probability <= 0.0 or probability > 1.0:
        raise InvalidProbabilityError(probability)


def _check_weight(weight: float) -> None:
    """Validate a vertex weight (must be finite and non-negative)."""
    if not isinstance(weight, (int, float)) or isinstance(weight, bool):
        raise InvalidWeightError(weight)
    if math.isnan(weight) or math.isinf(weight) or weight < 0.0:
        raise InvalidWeightError(weight)

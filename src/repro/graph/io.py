"""Serialisation of uncertain graphs.

Two formats are supported:

* a tab-separated edge list compatible with common uncertain-graph
  benchmark releases (``u<TAB>v<TAB>probability`` per line, with optional
  ``# vertex<TAB>weight`` weight lines), and
* a JSON document that round-trips the full graph including vertex
  weights and the graph name.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, TextIO, Union

from repro.exceptions import GraphError
from repro.graph.uncertain_graph import UncertainGraph

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# edge list format
# ----------------------------------------------------------------------
def write_edge_list(graph: UncertainGraph, path: PathLike) -> None:
    """Write ``graph`` to a tab-separated edge list file.

    The file starts with weight lines of the form ``# vertex<TAB>weight``
    (only for weights different from 1.0, plus all isolated vertices so
    that the graph round-trips), followed by one ``u<TAB>v<TAB>p`` line
    per edge.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        _write_edge_list(graph, handle)


def _write_edge_list(graph: UncertainGraph, handle: TextIO) -> None:
    for vertex in graph.vertices():
        weight = graph.weight(vertex)
        if weight != 1.0 or graph.degree(vertex) == 0:
            handle.write(f"# {vertex}\t{weight!r}\n")
    for edge in graph.edges():
        handle.write(f"{edge.u}\t{edge.v}\t{graph.probability(edge)!r}\n")


def read_edge_list(
    path: PathLike,
    default_weight: float = 1.0,
    vertex_type: type = int,
    name: Optional[str] = None,
) -> UncertainGraph:
    """Read a graph previously written with :func:`write_edge_list`.

    Parameters
    ----------
    path:
        File to read.
    default_weight:
        Weight assigned to vertices without an explicit weight line.
    vertex_type:
        Callable applied to the textual vertex ids (``int`` by default).
    name:
        Name for the resulting graph (defaults to the file stem).
    """
    path = Path(path)
    graph = UncertainGraph(name=name if name is not None else path.stem)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) != 2:
                    raise GraphError(
                        f"{path}:{line_number}: malformed weight line {raw_line!r}"
                    )
                vertex = vertex_type(parts[0])
                weight = float(parts[1])
                if graph.has_vertex(vertex):
                    graph.set_weight(vertex, weight)
                else:
                    graph.add_vertex(vertex, weight=weight)
                continue
            parts = line.split()
            if len(parts) != 3:
                raise GraphError(
                    f"{path}:{line_number}: malformed edge line {raw_line!r}"
                )
            u = vertex_type(parts[0])
            v = vertex_type(parts[1])
            probability = float(parts[2])
            for vertex in (u, v):
                if not graph.has_vertex(vertex):
                    graph.add_vertex(vertex, weight=default_weight)
            graph.add_edge(u, v, probability)
    return graph


# ----------------------------------------------------------------------
# JSON format
# ----------------------------------------------------------------------
def graph_to_dict(graph: UncertainGraph) -> dict:
    """Convert ``graph`` into a JSON-serialisable dictionary."""
    return {
        "name": graph.name,
        "vertices": [
            {"id": vertex, "weight": graph.weight(vertex)} for vertex in graph.vertices()
        ],
        "edges": [
            {"u": edge.u, "v": edge.v, "p": graph.probability(edge)}
            for edge in graph.edges()
        ],
    }


def graph_from_dict(payload: dict) -> UncertainGraph:
    """Rebuild a graph from the dictionary produced by :func:`graph_to_dict`."""
    graph = UncertainGraph(name=payload.get("name", ""))
    for vertex in payload.get("vertices", []):
        graph.add_vertex(vertex["id"], weight=float(vertex.get("weight", 1.0)))
    for edge in payload.get("edges", []):
        graph.add_edge(edge["u"], edge["v"], float(edge["p"]))
    return graph


def write_json(graph: UncertainGraph, path: PathLike) -> None:
    """Write ``graph`` as a JSON document."""
    path = Path(path)
    path.write_text(json.dumps(graph_to_dict(graph), indent=2), encoding="utf-8")


def read_json(path: PathLike) -> UncertainGraph:
    """Read a graph previously written with :func:`write_json`."""
    path = Path(path)
    return graph_from_dict(json.loads(path.read_text(encoding="utf-8")))

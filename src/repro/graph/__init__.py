"""Uncertain (probabilistic) graph substrate.

This subpackage provides the probabilistic graph model of the paper
(Section 3): an undirected graph whose edges exist independently with a
known probability and whose vertices carry information weights, together
with possible-world semantics, synthetic generators and serialisation.
"""

from repro.graph.uncertain_graph import UncertainGraph
from repro.graph.possible_world import PossibleWorld, enumerate_worlds, world_probability
from repro.graph.generators import (
    erdos_renyi_graph,
    partitioned_graph,
    wsn_graph,
    grid_road_graph,
    social_circle_graph,
    collaboration_graph,
    preferential_attachment_graph,
    path_graph,
    cycle_graph,
    star_graph,
    complete_graph,
)
from repro.graph.io import (
    read_edge_list,
    write_edge_list,
    graph_to_dict,
    graph_from_dict,
    read_json,
    write_json,
)
from repro.graph.validation import validate_graph, GraphStats, graph_stats
from repro.graph.transforms import (
    scale_probabilities,
    set_uniform_weights,
    normalize_weights,
    reweight_vertices,
    perturb_probabilities,
    ego_subgraph,
    largest_component_subgraph,
    merge_graphs,
)

__all__ = [
    "UncertainGraph",
    "PossibleWorld",
    "enumerate_worlds",
    "world_probability",
    "erdos_renyi_graph",
    "partitioned_graph",
    "wsn_graph",
    "grid_road_graph",
    "social_circle_graph",
    "collaboration_graph",
    "preferential_attachment_graph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "read_edge_list",
    "write_edge_list",
    "graph_to_dict",
    "graph_from_dict",
    "read_json",
    "write_json",
    "validate_graph",
    "GraphStats",
    "graph_stats",
    "scale_probabilities",
    "set_uniform_weights",
    "normalize_weights",
    "reweight_vertices",
    "perturb_probabilities",
    "ego_subgraph",
    "largest_component_subgraph",
    "merge_graphs",
]

"""Graph validation and summary statistics.

:func:`validate_graph` verifies the structural invariants the rest of the
library relies on (symmetric adjacency, valid probabilities and weights,
consistency between the adjacency map and the edge-probability map), and
:func:`graph_stats` computes the descriptive statistics reported by the
experiment harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.exceptions import GraphError
from repro.graph.uncertain_graph import UncertainGraph
from repro.types import Edge


def validate_graph(graph: UncertainGraph) -> None:
    """Check internal consistency of ``graph``.

    Raises
    ------
    GraphError
        With a message describing the first violated invariant.
    """
    adjacency = {v: set(graph.neighbors(v)) for v in graph.vertices()}
    for vertex, neighbors in adjacency.items():
        for neighbor in neighbors:
            if neighbor not in adjacency:
                raise GraphError(
                    f"adjacency of {vertex!r} references unknown vertex {neighbor!r}"
                )
            if vertex not in adjacency[neighbor]:
                raise GraphError(
                    f"adjacency is not symmetric for ({vertex!r}, {neighbor!r})"
                )
            if not graph.has_edge(vertex, neighbor):
                raise GraphError(
                    f"adjacency lists ({vertex!r}, {neighbor!r}) but no edge is stored"
                )
    for edge in graph.edges():
        if edge.v not in adjacency.get(edge.u, ()) or edge.u not in adjacency.get(edge.v, ()):
            raise GraphError(f"edge {edge!r} missing from adjacency map")
        probability = graph.probability(edge)
        if not (0.0 < probability <= 1.0) or math.isnan(probability):
            raise GraphError(f"edge {edge!r} has invalid probability {probability!r}")
    for vertex in graph.vertices():
        weight = graph.weight(vertex)
        if weight < 0 or math.isnan(weight) or math.isinf(weight):
            raise GraphError(f"vertex {vertex!r} has invalid weight {weight!r}")


@dataclass(frozen=True)
class GraphStats:
    """Descriptive statistics of an uncertain graph."""

    n_vertices: int
    n_edges: int
    average_degree: float
    min_degree: int
    max_degree: int
    average_probability: float
    min_probability: float
    max_probability: float
    total_weight: float
    n_certain_edges: int

    def as_dict(self) -> dict:
        """Return the statistics as a plain dictionary (for reporting/CSV)."""
        return {
            "n_vertices": self.n_vertices,
            "n_edges": self.n_edges,
            "average_degree": self.average_degree,
            "min_degree": self.min_degree,
            "max_degree": self.max_degree,
            "average_probability": self.average_probability,
            "min_probability": self.min_probability,
            "max_probability": self.max_probability,
            "total_weight": self.total_weight,
            "n_certain_edges": self.n_certain_edges,
        }


def graph_stats(graph: UncertainGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    degrees: List[int] = [graph.degree(v) for v in graph.vertices()]
    probabilities: List[float] = [graph.probability(e) for e in graph.edges()]
    edges: List[Edge] = graph.edge_list()
    return GraphStats(
        n_vertices=graph.n_vertices,
        n_edges=graph.n_edges,
        average_degree=(sum(degrees) / len(degrees)) if degrees else 0.0,
        min_degree=min(degrees) if degrees else 0,
        max_degree=max(degrees) if degrees else 0,
        average_probability=(sum(probabilities) / len(probabilities)) if probabilities else 0.0,
        min_probability=min(probabilities) if probabilities else 0.0,
        max_probability=max(probabilities) if probabilities else 0.0,
        total_weight=graph.total_weight(),
        n_certain_edges=sum(1 for e in edges if graph.probability(e) >= 1.0),
    )

"""Generic experiment runner.

Runs a set of named selection algorithms on a graph, measures wall-clock
time, and re-evaluates every algorithm's selected subgraph with one
shared, higher-precision estimator so that flow numbers are comparable
across algorithms (a selector's own estimate can be biased by its own
sampling noise).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.ftree.builder import build_ftree
from repro.ftree.sampler import ComponentSampler
from repro.graph.uncertain_graph import UncertainGraph
from repro.parallel.executor import ExecutorLike
from repro.reachability.backends import BackendLike
from repro.runtime import Session
from repro.rng import SeedLike, derive_seed
from repro.selection.base import SelectionResult
from repro.selection.registry import make_selector
from repro.service.evaluator import BatchEvaluator
from repro.service.requests import QueryRequest, QueryResult
from repro.types import Edge, VertexId


@dataclass(frozen=True)
class AlgorithmRun:
    """Result of one algorithm on one graph."""

    algorithm: str
    budget: int
    n_selected: int
    expected_flow: float
    evaluated_flow: float
    elapsed_seconds: float
    extras: Dict[str, float] = field(default_factory=dict)

    def as_row(self, **extra_columns) -> dict:
        """Flatten into a reporting row, merging additional sweep columns."""
        row = {
            "algorithm": self.algorithm,
            "budget": self.budget,
            "n_selected": self.n_selected,
            "expected_flow": self.expected_flow,
            "evaluated_flow": self.evaluated_flow,
            "elapsed_seconds": self.elapsed_seconds,
        }
        row.update(extra_columns)
        return row


def evaluate_flow(
    graph: UncertainGraph,
    edges: Iterable[Edge],
    query: VertexId,
    n_samples: int = 1000,
    exact_threshold: int = 14,
    seed: SeedLike = 12345,
    include_query: bool = False,
    backend: BackendLike = None,
    executor: ExecutorLike = None,
    shard_size: Optional[int] = None,
) -> float:
    """Independently evaluate the expected flow of a selected edge set.

    Builds an F-tree from scratch over ``edges`` and evaluates it with a
    generous sample budget (exact for small cyclic components), so the
    same yardstick is applied to every algorithm's output.
    """
    sampler = ComponentSampler(
        n_samples=n_samples,
        exact_threshold=exact_threshold,
        seed=seed,
        backend=backend,
        executor=executor,
        shard_size=shard_size,
    )
    ftree = build_ftree(graph, list(edges), query, sampler=sampler)
    return ftree.expected_flow(include_query=include_query)


def pick_query_vertex(graph: UncertainGraph) -> VertexId:
    """Pick a deterministic, well-connected query vertex (highest degree)."""
    best_vertex = None
    best_degree = -1
    for vertex in graph.vertices():
        degree = graph.degree(vertex)
        if degree > best_degree:
            best_degree = degree
            best_vertex = vertex
    if best_vertex is None:
        raise ValueError("cannot pick a query vertex from an empty graph")
    return best_vertex


def run_algorithms(
    graph: UncertainGraph,
    query: VertexId,
    budget: int,
    algorithms: Sequence[str],
    config: Optional[ExperimentConfig] = None,
    seed: SeedLike = 0,
) -> List[AlgorithmRun]:
    """Run every named algorithm on ``graph`` and evaluate the results uniformly."""
    config = config or ExperimentConfig()
    # one session for the whole run: it owns the executor built from
    # config.workers, so every selector (and the shared evaluation
    # yardstick) reuses a single process pool, the configured knobs are
    # also ambient for any nested default resolution, and session exit
    # releases the pool's worker processes even when a selector raises
    with Session(config.to_runtime_config()) as session:
        return _run_algorithms(
            graph, query, budget, algorithms, config, seed, session.executor
        )


def _run_algorithms(
    graph: UncertainGraph,
    query: VertexId,
    budget: int,
    algorithms: Sequence[str],
    config: ExperimentConfig,
    seed: SeedLike,
    executor,
) -> List[AlgorithmRun]:
    runs: List[AlgorithmRun] = []
    for index, name in enumerate(algorithms):
        algorithm_seed = derive_seed(seed, index + 1)
        n_samples = config.naive_samples if name == "Naive" else config.n_samples
        selector = make_selector(
            name,
            n_samples=n_samples,
            exact_threshold=config.exact_threshold,
            seed=algorithm_seed,
            include_query=config.include_query,
            backend=config.backend,
            crn=config.crn,
            executor=executor,
            shard_size=config.shard_size,
        )
        started = time.perf_counter()
        result: SelectionResult = selector.select(graph, query, budget)
        elapsed = time.perf_counter() - started
        evaluated = evaluate_flow(
            graph,
            result.selected_edges,
            query,
            n_samples=max(500, config.n_samples),
            exact_threshold=max(12, config.exact_threshold),
            seed=derive_seed(seed, 10_000 + index),
            include_query=config.include_query,
            backend=config.backend,
            executor=executor,
            shard_size=config.shard_size,
        )
        runs.append(
            AlgorithmRun(
                algorithm=name,
                budget=budget,
                n_selected=result.n_selected,
                expected_flow=result.expected_flow,
                evaluated_flow=evaluated,
                elapsed_seconds=elapsed,
                extras=dict(result.extras),
            )
        )
    return runs


def run_query_batch(
    graph: UncertainGraph,
    requests: Sequence[QueryRequest],
    config: Optional[ExperimentConfig] = None,
    evaluator: Optional[BatchEvaluator] = None,
) -> List[QueryResult]:
    """Answer a batch of service queries under an experiment configuration.

    The harness-side entry point of :mod:`repro.service`: builds a
    :class:`~repro.service.evaluator.BatchEvaluator` from the
    configuration (backend, workers, shard size, ``world_cache_size``)
    and answers the batch through it.  With ``world_cache_size=None``
    the evaluator shares the process-wide world cache, so repeated
    harness calls in one run — e.g. re-evaluating the same figure
    configuration — reuse each other's sampled worlds.

    Pass an explicit ``evaluator`` to share one instance (and its
    cache/pool) across many calls; it is then left open for its owner.
    An evaluator built here from ``config.workers`` owns its process
    pool, and the pool is released even when evaluation raises.
    """
    if evaluator is not None:
        return evaluator.evaluate(graph, requests)
    config = config or ExperimentConfig()
    with BatchEvaluator(
        backend=config.backend,
        executor=config.workers,
        shard_size=config.shard_size,
        cache=config.world_cache_size,
    ) as owned:
        return owned.evaluate(graph, requests)


def run_sweep(
    points: Sequence[Tuple[float, UncertainGraph, VertexId, int]],
    algorithms: Sequence[str],
    config: Optional[ExperimentConfig] = None,
    seed: SeedLike = 0,
    x_name: str = "x",
) -> List[dict]:
    """Run the algorithm set on every sweep point and return flat reporting rows.

    Parameters
    ----------
    points:
        Sequence of ``(x value, graph, query vertex, budget)`` tuples.
    algorithms:
        Algorithm names to run on each point.
    config:
        Shared experiment configuration.
    seed:
        Base seed; every point derives its own stream.
    x_name:
        Column name for the swept value in the returned rows.
    """
    rows: List[dict] = []
    for point_index, (x_value, graph, query, budget) in enumerate(points):
        runs = run_algorithms(
            graph,
            query,
            budget,
            algorithms,
            config=config,
            seed=derive_seed(seed, 100 + point_index),
        )
        for run in runs:
            rows.append(run.as_row(**{x_name: x_value, "graph": graph.name}))
    return rows

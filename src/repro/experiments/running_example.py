"""Reproduction of the paper's worked examples (Figures 1 and 3).

The exact topologies of the two running-example figures cannot be
recovered from the text alone (the figures are images and the in-text
arithmetic contains typos), so this module builds *replicas* with the
same component structure and verifies all claims against exact
possible-world enumeration:

* :func:`example1_graph` — a 7-vertex, 10-edge network around a query
  vertex with the probability multiset used in the paper's Equation-1
  example.  :func:`example1_report` reproduces the qualitative claim of
  Example 1: a well-chosen five-edge subgraph dominates the Dijkstra
  maximum-probability spanning tree (more flow with fewer edges).
* :func:`ftree_example_graph` — the 17-vertex graph of Figure 3 with the
  component structure A–F described in Example 2, used to exercise every
  F-tree insertion case (edges a–d of Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.algorithms.spanning import dijkstra_spanning_edges
from repro.graph.uncertain_graph import UncertainGraph
from repro.reachability.exact import exact_expected_flow
from repro.selection.exact_optimal import exhaustive_optimal_selection
from repro.types import Edge

#: Query vertex of both examples.
QUERY = "Q"


def example1_graph() -> UncertainGraph:
    """Replica of the Figure-1 running example (7 vertices, 10 edges).

    All vertices carry unit weight; the edge probability multiset matches
    the one recoverable from the paper's Equation-1 computation
    (0.6, 0.5, 0.8, 0.4, 0.4, 0.5 present and 0.1, 0.3, 0.4, 0.1 absent in
    the sampled world ``g1``).
    """
    graph = UncertainGraph(name="example1")
    for vertex in (QUERY, "A", "B", "C", "D", "E", "F"):
        graph.add_vertex(vertex, weight=1.0)
    edges: List[Tuple[str, str, float]] = [
        (QUERY, "A", 0.6),
        (QUERY, "B", 0.5),
        ("A", "B", 0.8),
        ("A", "C", 0.4),
        ("B", "D", 0.4),
        ("C", "D", 0.5),
        ("C", "E", 0.1),
        ("D", "F", 0.3),
        ("E", "F", 0.4),
        (QUERY, "E", 0.1),
    ]
    for u, v, probability in edges:
        graph.add_edge(u, v, probability)
    return graph


@dataclass(frozen=True)
class Example1Report:
    """Numbers reproduced for Example 1."""

    flow_all_edges: float
    flow_dijkstra_tree: float
    dijkstra_edges: int
    flow_optimal_five: float
    optimal_edges: Tuple[Edge, ...]

    @property
    def optimal_dominates_dijkstra(self) -> bool:
        """True when 5 well-chosen edges beat the full spanning tree (the paper's claim)."""
        return self.flow_optimal_five > self.flow_dijkstra_tree


def example1_report() -> Example1Report:
    """Recompute the three solutions discussed in Example 1 (exactly)."""
    graph = example1_graph()
    all_edges = graph.edge_list()
    flow_all = exact_expected_flow(graph, QUERY, edges=all_edges).expected_flow
    tree_edges = dijkstra_spanning_edges(graph, QUERY)
    flow_tree = exact_expected_flow(graph, QUERY, edges=tree_edges).expected_flow
    optimal = exhaustive_optimal_selection(graph, QUERY, budget=5)
    return Example1Report(
        flow_all_edges=flow_all,
        flow_dijkstra_tree=flow_tree,
        dijkstra_edges=len(tree_edges),
        flow_optimal_five=optimal.expected_flow,
        optimal_edges=tuple(optimal.selected_edges),
    )


def ftree_example_graph(edge_probability: float = 0.5) -> UncertainGraph:
    """Replica of the Figure-3 graph (query vertex plus vertices 1–16).

    Component structure (matching Example 2):

    * mono component ``A = ({1, 2, 3, 6}, Q)`` — vertices 2, 3 and 6 are
      adjacent to Q, vertex 1 hangs below vertex 2;
    * bi component ``B = ({4, 5}, 3)`` — triangle 3–4–5;
    * bi component ``C = ({7, 8, 9}, 6)`` — cycle 6–7–8–9–6;
    * bi component ``D = ({10, 11}, 9)`` — triangle 9–10–11;
    * mono component ``E = ({13, 14, 15, 16}, 9)`` — 9–13, 13–14, 13–15,
      15–16;
    * mono component ``F = ({12}, 11)`` — edge 11–12.

    Every edge has probability ``edge_probability`` (paper: 0.5) and
    vertex ``i`` has weight ``i`` (Q has weight 0).
    """
    graph = UncertainGraph(name="ftree-example")
    graph.add_vertex(QUERY, weight=0.0)
    for vertex in range(1, 17):
        graph.add_vertex(vertex, weight=float(vertex))
    edges = [
        # mono component A
        (QUERY, 2), (QUERY, 3), (QUERY, 6), (2, 1),
        # bi component B: triangle on {3, 4, 5}
        (3, 4), (4, 5), (5, 3),
        # bi component C: cycle on {6, 7, 8, 9}
        (6, 7), (7, 8), (8, 9), (9, 6),
        # bi component D: triangle on {9, 10, 11}
        (9, 10), (10, 11), (11, 9),
        # mono component E
        (9, 13), (13, 14), (13, 15), (15, 16),
        # mono component F
        (11, 12),
    ]
    for u, v in edges:
        graph.add_edge(u, v, edge_probability)
    return graph


def ftree_example_insertion_order() -> List[Edge]:
    """An insertion order for the Figure-3 graph that keeps Q connected throughout."""
    graph = ftree_example_graph()
    order: List[Edge] = []
    connected = {QUERY}
    remaining = graph.edge_list()
    while remaining:
        progressed = False
        for edge in list(remaining):
            if edge.u in connected or edge.v in connected:
                order.append(edge)
                connected.add(edge.u)
                connected.add(edge.v)
                remaining.remove(edge)
                progressed = True
        if not progressed:  # pragma: no cover - the example graph is connected
            break
    return order


@dataclass(frozen=True)
class FTreeExampleReport:
    """Expected flow of the Figure-3 replica, exact versus F-tree."""

    exact_flow: float
    ftree_flow: float
    n_components: int
    n_bi_components: int

    @property
    def agreement(self) -> float:
        """Relative difference between the exact and the F-tree flow."""
        if self.exact_flow == 0:
            return 0.0
        return abs(self.exact_flow - self.ftree_flow) / self.exact_flow


def ftree_example_report() -> FTreeExampleReport:
    """Evaluate the Figure-3 replica with exact enumeration and with the F-tree."""
    from repro.ftree.builder import build_ftree
    from repro.ftree.sampler import ComponentSampler

    graph = ftree_example_graph()
    exact = exact_expected_flow(graph, QUERY).expected_flow
    ftree = build_ftree(
        graph,
        graph.edge_list(),
        QUERY,
        sampler=ComponentSampler(n_samples=1, exact_threshold=12, seed=0),
    )
    components = ftree.components()
    return FTreeExampleReport(
        exact_flow=exact,
        ftree_flow=ftree.expected_flow(),
        n_components=len(components),
        n_bi_components=sum(1 for component in components if not component.is_mono),
    )

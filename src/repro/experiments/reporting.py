"""Textual reporting of experiment results.

The paper presents its evaluation as line plots (flow and runtime versus
a swept parameter).  This module prints the same series as ASCII tables
and CSV so the figures can be regenerated with any plotting tool.
"""

from __future__ import annotations

import io
from typing import Dict, List, Mapping, Optional, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    float_format: str = "{:.4g}",
    title: Optional[str] = None,
) -> str:
    """Render rows of dictionaries as a fixed-width ASCII table."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    output = io.StringIO()
    if title:
        output.write(title + "\n")
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    output.write(header + "\n")
    output.write("  ".join("-" * width for width in widths) + "\n")
    for line in rendered:
        output.write("  ".join(cell.ljust(width) for cell, width in zip(line, widths)) + "\n")
    return output.getvalue().rstrip("\n")


def rows_to_csv(
    rows: Sequence[Mapping[str, object]], columns: Optional[Sequence[str]] = None
) -> str:
    """Render rows as CSV text (header + one line per row)."""
    rows = list(rows)
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    lines = [",".join(str(column) for column in columns)]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            text = f"{value:.6g}" if isinstance(value, float) else str(value)
            if "," in text or '"' in text:
                text = '"' + text.replace('"', '""') + '"'
            cells.append(text)
        lines.append(",".join(cells))
    return "\n".join(lines)


def summarize_sweep(
    rows: Sequence[Mapping[str, object]],
    x_name: str,
    value: str = "evaluated_flow",
) -> Dict[str, List[tuple]]:
    """Group sweep rows into per-algorithm ``(x, value)`` series (plot-ready)."""
    series: Dict[str, List[tuple]] = {}
    for row in rows:
        algorithm = str(row.get("algorithm", "?"))
        series.setdefault(algorithm, []).append((row.get(x_name), row.get(value)))
    for points in series.values():
        points.sort(key=lambda pair: (pair[0] is None, pair[0]))
    return series


def compare_algorithms(
    rows: Sequence[Mapping[str, object]],
    metric: str = "evaluated_flow",
) -> Dict[str, float]:
    """Average ``metric`` per algorithm over all sweep points."""
    totals: Dict[str, List[float]] = {}
    for row in rows:
        value = row.get(metric)
        if value is None:
            continue
        totals.setdefault(str(row.get("algorithm", "?")), []).append(float(value))
    return {name: sum(values) / len(values) for name, values in totals.items() if values}

"""Experiment configuration objects.

The paper's default setting is ``|V| = 10,000``, vertex degree 6,
budget ``k = 200`` and 1000 Monte-Carlo samples.  Pure-Python Monte-Carlo
at that scale takes hours per figure, so the default configuration here
is scaled down (see DESIGN.md §4 and EXPERIMENTS.md); the paper-scale
values can be requested explicitly through :meth:`ExperimentConfig.paper_scale`
or by setting the environment variable ``REPRO_BENCH_SCALE`` (a float
multiplier applied to graph sizes and budgets by the benchmark suite).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

from repro.exceptions import ExperimentError
from repro.reachability.backends import backend_names

#: The algorithm set of the paper's figures, in plotting order.
DEFAULT_ALGORITHMS: Tuple[str, ...] = (
    "Dijkstra",
    "Naive",
    "FT",
    "FT+M",
    "FT+M+CI",
    "FT+M+DS",
    "FT+M+CI+DS",
)

#: Algorithms that stay fast enough for larger sweeps (Naive excluded).
FAST_ALGORITHMS: Tuple[str, ...] = (
    "Dijkstra",
    "FT",
    "FT+M",
    "FT+M+CI",
    "FT+M+DS",
    "FT+M+CI+DS",
)


def bench_scale() -> float:
    """Return the global benchmark scale factor from ``REPRO_BENCH_SCALE``.

    ``1.0`` (the default) keeps the scaled-down sizes; larger values move
    the experiments towards the paper's original scale.
    """
    raw = os.environ.get("REPRO_BENCH_SCALE", "1.0")
    try:
        value = float(raw)
    except ValueError as error:
        raise ExperimentError(f"REPRO_BENCH_SCALE must be a number, got {raw!r}") from error
    if value <= 0:
        raise ExperimentError(f"REPRO_BENCH_SCALE must be positive, got {value!r}")
    return value


@dataclass(frozen=True)
class SweepPoint:
    """One point of a parameter sweep: a label plus the overriding value."""

    label: str
    value: float


@dataclass(frozen=True)
class ExperimentConfig:
    """Configuration shared by all figure reproductions.

    Attributes
    ----------
    n_vertices:
        Graph size used when the sweep does not vary it.
    degree:
        Average vertex degree used by the synthetic generators.
    budget:
        Edge budget ``k``.
    n_samples:
        Monte-Carlo samples per estimation for the sampling selectors.
    naive_samples:
        Sample size for the (much slower) Naive baseline.
    exact_threshold:
        Bi-components with at most this many uncertain edges are solved
        exactly by the FT variants.
    algorithms:
        Algorithm names to run (see :data:`DEFAULT_ALGORITHMS`).
    seed:
        Base random seed; every algorithm/point derives its own stream.
    repetitions:
        Number of independent repetitions averaged per point.
    backend:
        Possible-world sampling backend used by every sampling-based
        selector and evaluator (see
        :data:`repro.reachability.backends.BACKEND_NAMES`); ``None``
        defers to the library-wide default
        (:func:`repro.reachability.backends.get_default_backend`).
    crn:
        Common-random-numbers candidate scoring for the sampling-based
        selectors (one shared world batch per selection round).
        ``None`` defers to the library-wide default
        (:func:`repro.selection.registry.get_default_crn`, normally
        True); ``False`` forces the per-candidate resampling reference
        mode everywhere.
    workers:
        Worker processes for sharded possible-world sampling (see
        :mod:`repro.parallel`): ``None`` keeps the historical unsharded
        single-process sampling, ``1`` the sharded serial reference,
        larger counts a shared process pool.  Estimates and selections
        are bit-for-bit identical for any worker count given the same
        ``(seed, n_samples, shard_size)``.
    shard_size:
        Worlds per shard when ``workers`` is set (``None`` uses
        :data:`repro.parallel.DEFAULT_SHARD_SIZE`).
    world_cache_size:
        Entry bound of the shared :class:`repro.service.WorldCache` used
        by service-backed query evaluation (``run_query_batch`` and, for
        multi-figure runs, one cache installed for the whole run so
        repeated figures reuse each other's sampled worlds).  ``None``
        keeps the process-wide default cache; ``0`` disables caching.
    """

    n_vertices: int = 300
    degree: int = 6
    budget: int = 12
    n_samples: int = 150
    naive_samples: int = 60
    exact_threshold: int = 10
    algorithms: Sequence[str] = field(default=DEFAULT_ALGORITHMS)
    seed: Optional[int] = 0
    repetitions: int = 1
    include_query: bool = False
    backend: Optional[str] = None
    crn: Optional[bool] = None
    workers: Optional[int] = None
    shard_size: Optional[int] = None
    world_cache_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_vertices <= 0:
            raise ExperimentError("n_vertices must be positive")
        if self.budget < 0:
            raise ExperimentError("budget must be non-negative")
        if self.n_samples <= 0 or self.naive_samples <= 0:
            raise ExperimentError("sample sizes must be positive")
        if self.repetitions <= 0:
            raise ExperimentError("repetitions must be positive")
        if self.backend is not None and self.backend not in backend_names():
            raise ExperimentError(
                f"unknown sampling backend {self.backend!r}; expected one of {backend_names()}"
            )
        if self.workers is not None and self.workers <= 0:
            raise ExperimentError(f"workers must be positive, got {self.workers!r}")
        if self.shard_size is not None and self.shard_size <= 0:
            raise ExperimentError(f"shard_size must be positive, got {self.shard_size!r}")
        if self.world_cache_size is not None and self.world_cache_size < 0:
            raise ExperimentError(
                f"world_cache_size must be >= 0 (0 disables caching), "
                f"got {self.world_cache_size!r}"
            )

    def scaled(self, factor: float) -> "ExperimentConfig":
        """Return a copy with graph size and budget scaled by ``factor``."""
        return replace(
            self,
            n_vertices=max(10, int(self.n_vertices * factor)),
            budget=max(1, int(self.budget * factor)),
        )

    def to_runtime_config(self):
        """Project the runtime knobs into a :class:`repro.runtime.RuntimeConfig`.

        Maps ``backend``/``crn``/``workers``/``shard_size`` onto the
        session fields of the same meaning (experiment-only knobs —
        sizes, budgets, algorithm lists — stay here).  The harness
        activates the result as a session for every run, so one pool
        serves the whole experiment.  ``world_cache_size`` is deliberately
        *not* projected: it configures run-*wide* cache sharing — the
        multi-figure runner installs it as one session around the whole
        batch, and ``run_query_batch`` passes it per evaluator — so
        projecting it here would pin a fresh per-run cache that shadows
        the shared one.
        """
        from repro.runtime import RuntimeConfig

        return RuntimeConfig(
            backend=self.backend,
            crn=self.crn,
            workers=self.workers,
            shard_size=self.shard_size,
        )

    @classmethod
    def paper_scale(cls) -> "ExperimentConfig":
        """The configuration the paper reports (expensive: hours of runtime)."""
        return cls(
            n_vertices=10_000,
            degree=6,
            budget=200,
            n_samples=1000,
            naive_samples=1000,
            repetitions=1,
        )

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """A deliberately tiny configuration for unit tests and smoke runs."""
        return cls(
            n_vertices=60,
            degree=4,
            budget=6,
            n_samples=60,
            naive_samples=30,
            algorithms=("Dijkstra", "FT", "FT+M"),
        )

"""Ablation studies beyond the paper's evaluation.

Three studies that probe the design choices documented in DESIGN.md:

* :func:`exact_threshold_ablation` — our extension of evaluating small
  bi-connected components exactly instead of sampling them: how does the
  threshold trade runtime against estimation error?
* :func:`probability_misestimation_robustness` — edge probabilities are
  rarely known exactly in practice; how much flow do the selectors lose
  when they optimise against perturbed probabilities but are judged on
  the true ones?
* :func:`lazy_versus_eager_greedy` — the CELF-style lazy greedy
  (library extension) versus the paper's eager greedy with delayed
  sampling: probes per iteration and resulting flow.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import FigureResult
from repro.experiments.harness import evaluate_flow, pick_query_vertex
from repro.graph.generators import erdos_renyi_graph, partitioned_graph
from repro.graph.transforms import perturb_probabilities
from repro.rng import derive_seed
from repro.selection.dijkstra_tree import DijkstraSelector
from repro.selection.ftree_greedy import FTreeGreedySelector
from repro.selection.lazy_greedy import LazyGreedySelector


def exact_threshold_ablation(
    thresholds: Sequence[int] = (0, 4, 8, 12),
    config: Optional[ExperimentConfig] = None,
) -> FigureResult:
    """Sweep the exact-evaluation threshold of the component sampler.

    Threshold 0 reproduces the paper exactly (every cyclic component is
    sampled); larger thresholds evaluate more components by exhaustive
    enumeration, removing sampling error at a (bounded) exponential cost.
    """
    config = config or ExperimentConfig()
    graph = erdos_renyi_graph(
        config.n_vertices, average_degree=config.degree, seed=config.seed
    )
    query = pick_query_vertex(graph)
    rows: List[dict] = []
    for index, threshold in enumerate(thresholds):
        selector = FTreeGreedySelector(
            n_samples=config.n_samples,
            exact_threshold=threshold,
            memoize=True,
            seed=derive_seed(config.seed, index),
        )
        result = selector.select(graph, query, config.budget)
        evaluated = evaluate_flow(
            graph,
            result.selected_edges,
            query,
            n_samples=max(500, config.n_samples),
            seed=derive_seed(config.seed, 300 + index),
        )
        rows.append(
            {
                "exact_threshold": threshold,
                "algorithm": "FT+M",
                "evaluated_flow": evaluated,
                "elapsed_seconds": result.elapsed_seconds,
                "sampled_components": result.extras.get("sampled_components", 0.0),
                "exact_components": result.extras.get("exact_components", 0.0),
            }
        )
    return FigureResult(
        figure="ablation-exact-threshold",
        description="Exact evaluation threshold for small bi-connected components",
        x_name="exact_threshold",
        rows=rows,
    )


def probability_misestimation_robustness(
    noise_levels: Sequence[float] = (0.0, 0.1, 0.25, 0.5),
    config: Optional[ExperimentConfig] = None,
) -> FigureResult:
    """Select edges against perturbed probabilities, evaluate on the true ones.

    Models the realistic situation where link reliabilities are only
    estimates.  For each noise level the selector sees a graph whose edge
    probabilities are multiplied by a uniform factor in ``[1-noise,
    1+noise]``; the selected edges are then evaluated against the true
    probabilities.
    """
    config = config or ExperimentConfig()
    graph = partitioned_graph(config.n_vertices, degree=config.degree, seed=config.seed)
    query = pick_query_vertex(graph)
    rows: List[dict] = []
    for index, noise in enumerate(noise_levels):
        noisy = (
            graph
            if noise == 0.0
            else perturb_probabilities(graph, noise=noise, seed=derive_seed(config.seed, index))
        )
        for name, selector in (
            ("FT+M", FTreeGreedySelector(
                n_samples=config.n_samples,
                exact_threshold=config.exact_threshold,
                memoize=True,
                seed=derive_seed(config.seed, 50 + index),
            )),
            ("Dijkstra", DijkstraSelector()),
        ):
            result = selector.select(noisy, query, config.budget)
            true_flow = evaluate_flow(
                graph,
                result.selected_edges,
                query,
                n_samples=max(500, config.n_samples),
                seed=derive_seed(config.seed, 700 + index),
            )
            rows.append(
                {
                    "noise": noise,
                    "algorithm": name,
                    "evaluated_flow": true_flow,
                    "elapsed_seconds": result.elapsed_seconds,
                }
            )
    return FigureResult(
        figure="ablation-probability-noise",
        description="Robustness of the selection to misestimated edge probabilities",
        x_name="noise",
        rows=rows,
    )


def lazy_versus_eager_greedy(
    budgets: Sequence[int] = (5, 10, 20),
    config: Optional[ExperimentConfig] = None,
) -> FigureResult:
    """Compare the eager FT greedy (with and without delayed sampling) to lazy greedy."""
    config = config or ExperimentConfig()
    graph = partitioned_graph(config.n_vertices, degree=config.degree, seed=config.seed)
    query = pick_query_vertex(graph)
    rows: List[dict] = []
    for index, budget in enumerate(budgets):
        selectors = (
            ("FT+M", FTreeGreedySelector(
                n_samples=config.n_samples,
                exact_threshold=config.exact_threshold,
                memoize=True,
                seed=derive_seed(config.seed, index),
            )),
            ("FT+M+DS", FTreeGreedySelector(
                n_samples=config.n_samples,
                exact_threshold=config.exact_threshold,
                memoize=True,
                delayed=True,
                seed=derive_seed(config.seed, index),
            )),
            ("FT+Lazy", LazyGreedySelector(
                n_samples=config.n_samples,
                exact_threshold=config.exact_threshold,
                memoize=True,
                seed=derive_seed(config.seed, index),
            )),
        )
        for name, selector in selectors:
            result = selector.select(graph, query, budget)
            evaluated = evaluate_flow(
                graph,
                result.selected_edges,
                query,
                n_samples=max(500, config.n_samples),
                seed=derive_seed(config.seed, 900 + index),
            )
            probes = result.extras.get(
                "flow_evaluations",
                float(sum(iteration.candidates_probed for iteration in result.iterations)),
            )
            rows.append(
                {
                    "budget_k": budget,
                    "algorithm": name,
                    "evaluated_flow": evaluated,
                    "elapsed_seconds": result.elapsed_seconds,
                    "flow_evaluations": probes,
                }
            )
    return FigureResult(
        figure="ablation-lazy-greedy",
        description="Lazy (CELF) versus eager greedy probing",
        x_name="budget_k",
        rows=rows,
    )

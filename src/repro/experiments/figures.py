"""Per-figure experiment reproductions (paper Section 7).

Every public function regenerates the data behind one figure of the
paper's evaluation: a list of rows, one per (swept value, algorithm),
with the expected information flow and the running time — exactly the
two series every figure plots.  Default parameters are scaled down so a
full run finishes on a laptop; pass an
:class:`~repro.experiments.config.ExperimentConfig` (or
``ExperimentConfig.paper_scale()``) to change that.

The mapping from figure to function is listed in :data:`ALL_FIGURES`
and, with more context, in DESIGN.md §3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.registry import load_dataset
from repro.experiments.config import FAST_ALGORITHMS, ExperimentConfig
from repro.experiments.harness import evaluate_flow, pick_query_vertex, run_sweep
from repro.ftree.builder import build_ftree
from repro.ftree.sampler import ComponentSampler
from repro.graph.generators import erdos_renyi_graph, partitioned_graph, wsn_graph
from repro.graph.uncertain_graph import UncertainGraph
from repro.reachability.exact import exact_expected_flow
from repro.reachability.monte_carlo import monte_carlo_expected_flow
from repro.rng import derive_seed
from repro.selection.ftree_greedy import FTreeGreedySelector
from repro.types import VertexId


@dataclass
class FigureResult:
    """Rows reproducing one figure, plus metadata for reporting."""

    figure: str
    description: str
    x_name: str
    rows: List[dict] = field(default_factory=list)

    def series(self, value: str = "evaluated_flow") -> Dict[str, List[Tuple[float, float]]]:
        """Per-algorithm ``(x, value)`` series, ready for plotting."""
        series: Dict[str, List[Tuple[float, float]]] = {}
        for row in self.rows:
            series.setdefault(row["algorithm"], []).append((row[self.x_name], row[value]))
        for points in series.values():
            points.sort()
        return series


def _query_for(graph: UncertainGraph) -> VertexId:
    return pick_query_vertex(graph)


# ----------------------------------------------------------------------
# Figure 5: graph size sweeps
# ----------------------------------------------------------------------
def figure5a_graph_size_locality(
    sizes: Sequence[int] = (150, 300, 600),
    config: Optional[ExperimentConfig] = None,
) -> FigureResult:
    """Fig. 5(a): flow and runtime versus |V| on the *partitioned* locality graphs."""
    config = config or ExperimentConfig()
    points = []
    for index, size in enumerate(sizes):
        graph = partitioned_graph(size, degree=config.degree, seed=derive_seed(config.seed, index))
        points.append((float(size), graph, _query_for(graph), config.budget))
    rows = run_sweep(points, config.algorithms, config=config, seed=config.seed, x_name="n_vertices")
    return FigureResult(
        figure="5a",
        description="Changing graph size with locality assumption (partitioned)",
        x_name="n_vertices",
        rows=rows,
    )


def figure5b_graph_size_no_locality(
    sizes: Sequence[int] = (150, 300, 600),
    config: Optional[ExperimentConfig] = None,
) -> FigureResult:
    """Fig. 5(b): flow and runtime versus |V| on Erdős graphs (no locality)."""
    config = config or ExperimentConfig()
    points = []
    for index, size in enumerate(sizes):
        graph = erdos_renyi_graph(
            size, average_degree=config.degree, seed=derive_seed(config.seed, index)
        )
        points.append((float(size), graph, _query_for(graph), config.budget))
    rows = run_sweep(points, config.algorithms, config=config, seed=config.seed, x_name="n_vertices")
    return FigureResult(
        figure="5b",
        description="Changing graph size without locality assumption (Erdős)",
        x_name="n_vertices",
        rows=rows,
    )


# ----------------------------------------------------------------------
# Figure 6: density sweeps
# ----------------------------------------------------------------------
def figure6a_density_locality(
    degrees: Sequence[int] = (4, 6, 10),
    config: Optional[ExperimentConfig] = None,
) -> FigureResult:
    """Fig. 6(a): flow and runtime versus vertex degree on partitioned graphs."""
    config = config or ExperimentConfig()
    points = []
    for index, degree in enumerate(degrees):
        graph = partitioned_graph(
            config.n_vertices, degree=degree, seed=derive_seed(config.seed, index)
        )
        points.append((float(degree), graph, _query_for(graph), config.budget))
    rows = run_sweep(points, config.algorithms, config=config, seed=config.seed, x_name="degree")
    return FigureResult(
        figure="6a",
        description="Changing graph density with locality assumption (partitioned)",
        x_name="degree",
        rows=rows,
    )


def figure6b_density_no_locality(
    degrees: Sequence[int] = (4, 6, 10),
    config: Optional[ExperimentConfig] = None,
) -> FigureResult:
    """Fig. 6(b): flow and runtime versus vertex degree on Erdős graphs."""
    config = config or ExperimentConfig()
    points = []
    for index, degree in enumerate(degrees):
        graph = erdos_renyi_graph(
            config.n_vertices, average_degree=degree, seed=derive_seed(config.seed, index)
        )
        points.append((float(degree), graph, _query_for(graph), config.budget))
    rows = run_sweep(points, config.algorithms, config=config, seed=config.seed, x_name="degree")
    return FigureResult(
        figure="6b",
        description="Changing graph density without locality assumption (Erdős)",
        x_name="degree",
        rows=rows,
    )


# ----------------------------------------------------------------------
# Figure 7: budget sweeps
# ----------------------------------------------------------------------
def figure7a_budget_locality(
    budgets: Sequence[int] = (5, 10, 20),
    config: Optional[ExperimentConfig] = None,
) -> FigureResult:
    """Fig. 7(a): flow and runtime versus budget k on partitioned graphs."""
    config = config or ExperimentConfig()
    graph = partitioned_graph(config.n_vertices, degree=config.degree, seed=config.seed)
    query = _query_for(graph)
    points = [(float(budget), graph, query, budget) for budget in budgets]
    rows = run_sweep(points, config.algorithms, config=config, seed=config.seed, x_name="budget_k")
    return FigureResult(
        figure="7a",
        description="Changing budget k with locality assumption (partitioned)",
        x_name="budget_k",
        rows=rows,
    )


def figure7b_budget_no_locality(
    budgets: Sequence[int] = (5, 10, 20),
    config: Optional[ExperimentConfig] = None,
) -> FigureResult:
    """Fig. 7(b): flow and runtime versus budget k on Erdős graphs."""
    config = config or ExperimentConfig()
    graph = erdos_renyi_graph(config.n_vertices, average_degree=config.degree, seed=config.seed)
    query = _query_for(graph)
    points = [(float(budget), graph, query, budget) for budget in budgets]
    rows = run_sweep(points, config.algorithms, config=config, seed=config.seed, x_name="budget_k")
    return FigureResult(
        figure="7b",
        description="Changing budget k without locality assumption (Erdős)",
        x_name="budget_k",
        rows=rows,
    )


# ----------------------------------------------------------------------
# Figure 8: synthetic wireless sensor networks
# ----------------------------------------------------------------------
def figure8_wsn(
    eps_values: Sequence[float] = (0.05, 0.07),
    budgets: Sequence[int] = (5, 10, 20),
    config: Optional[ExperimentConfig] = None,
) -> Dict[float, FigureResult]:
    """Fig. 8(a)/(b): budget sweep on WSN graphs for each connection radius eps."""
    config = config or ExperimentConfig()
    results: Dict[float, FigureResult] = {}
    for eps_index, eps in enumerate(eps_values):
        graph = wsn_graph(
            config.n_vertices, eps=eps, seed=derive_seed(config.seed, eps_index)
        )
        query = _query_for(graph)
        points = [(float(budget), graph, query, budget) for budget in budgets]
        rows = run_sweep(
            points, config.algorithms, config=config, seed=config.seed, x_name="budget_k"
        )
        results[eps] = FigureResult(
            figure="8a" if eps_index == 0 else "8b",
            description=f"Synthetic wireless sensor network, eps={eps}",
            x_name="budget_k",
            rows=rows,
        )
    return results


# ----------------------------------------------------------------------
# Figure 9: real-world surrogates
# ----------------------------------------------------------------------
def figure9_real_world(
    datasets: Sequence[str] = ("san-joaquin", "facebook", "dblp", "youtube"),
    budgets: Sequence[int] = (5, 10, 20),
    config: Optional[ExperimentConfig] = None,
    sizes: Optional[Dict[str, int]] = None,
) -> Dict[str, FigureResult]:
    """Fig. 9(a)-(d): budget sweep on the four real-world dataset surrogates."""
    config = config or ExperimentConfig(algorithms=FAST_ALGORITHMS)
    panel_names = {"san-joaquin": "9a", "facebook": "9b", "dblp": "9c", "youtube": "9d"}
    results: Dict[str, FigureResult] = {}
    for dataset_index, name in enumerate(datasets):
        size = None if sizes is None else sizes.get(name)
        graph = load_dataset(name, n_vertices=size, seed=derive_seed(config.seed, dataset_index))
        query = _query_for(graph)
        points = [(float(budget), graph, query, budget) for budget in budgets]
        rows = run_sweep(
            points, config.algorithms, config=config, seed=config.seed, x_name="budget_k"
        )
        results[name] = FigureResult(
            figure=panel_names.get(name, name),
            description=f"Real-world surrogate dataset: {name}",
            x_name="budget_k",
            rows=rows,
        )
    return results


# ----------------------------------------------------------------------
# Parameter c (delayed sampling penalty) — Section 7.3, "Parameter c"
# ----------------------------------------------------------------------
def parameter_c_sweep(
    c_values: Sequence[float] = (1.01, 1.2, 2.0, 4.0, 16.0),
    config: Optional[ExperimentConfig] = None,
) -> FigureResult:
    """Sweep the delayed-sampling penalisation parameter ``c`` (FT+M+DS)."""
    config = config or ExperimentConfig()
    graph = partitioned_graph(config.n_vertices, degree=config.degree, seed=config.seed)
    query = _query_for(graph)
    rows: List[dict] = []
    for index, c in enumerate(c_values):
        selector = FTreeGreedySelector(
            n_samples=config.n_samples,
            exact_threshold=config.exact_threshold,
            memoize=True,
            delayed=True,
            delay_base=c,
            seed=derive_seed(config.seed, index),
        )
        result = selector.select(graph, query, config.budget)
        evaluated = evaluate_flow(
            graph,
            result.selected_edges,
            query,
            n_samples=max(500, config.n_samples),
            seed=derive_seed(config.seed, 999 + index),
        )
        rows.append(
            {
                "c": float(c),
                "algorithm": "FT+M+DS",
                "evaluated_flow": evaluated,
                "expected_flow": result.expected_flow,
                "elapsed_seconds": result.elapsed_seconds,
                "delayed_candidates": result.extras.get("delayed_candidates", 0.0),
            }
        )
    return FigureResult(
        figure="param-c",
        description="Delayed sampling penalisation parameter c",
        x_name="c",
        rows=rows,
    )


# ----------------------------------------------------------------------
# Estimator variance ablation — Section 7.3 discussion of Fig. 5(b)
# ----------------------------------------------------------------------
def estimator_variance_ablation(
    n_vertices: int = 12,
    average_degree: float = 3.0,
    n_samples: int = 100,
    repetitions: int = 30,
    seed: Optional[int] = 0,
) -> FigureResult:
    """Compare whole-graph sampling with component-wise (F-tree) estimation.

    A small cyclic graph (all of its edges selected, so bi-connected
    components exist and both estimators must sample) is evaluated
    exactly by enumeration; both estimators are then run ``repetitions``
    times and their empirical bias and variance reported.  The paper
    argues (Section 7.3) that sampling independent components separately
    yields a lower variance than sampling the whole graph with the same
    sample size.
    """
    graph = erdos_renyi_graph(
        n_vertices, average_degree=average_degree, seed=seed, weight_range=(1.0, 5.0)
    )
    query = pick_query_vertex(graph)
    selected = graph.edge_list()
    exact = exact_expected_flow(graph, query, edges=selected).expected_flow

    naive_estimates = []
    ftree_estimates = []
    for repetition in range(repetitions):
        naive = monte_carlo_expected_flow(
            graph,
            query,
            n_samples=n_samples,
            seed=derive_seed(seed, 100 + repetition),
            edges=selected,
        )
        naive_estimates.append(naive.expected_flow)
        sampler = ComponentSampler(
            n_samples=n_samples,
            exact_threshold=0,  # force sampling so the comparison is fair
            seed=derive_seed(seed, 500 + repetition),
        )
        ftree = build_ftree(graph, selected, query, sampler=sampler)
        ftree_estimates.append(ftree.expected_flow())

    rows = [
        {
            "estimator": "whole-graph MC",
            "exact_flow": exact,
            "mean_estimate": float(np.mean(naive_estimates)),
            "variance": float(np.var(naive_estimates, ddof=1)),
            "abs_bias": abs(float(np.mean(naive_estimates)) - exact),
            "n_samples": n_samples,
            "repetitions": repetitions,
        },
        {
            "estimator": "F-tree component MC",
            "exact_flow": exact,
            "mean_estimate": float(np.mean(ftree_estimates)),
            "variance": float(np.var(ftree_estimates, ddof=1)),
            "abs_bias": abs(float(np.mean(ftree_estimates)) - exact),
            "n_samples": n_samples,
            "repetitions": repetitions,
        },
    ]
    return FigureResult(
        figure="variance-ablation",
        description="Whole-graph versus component-wise sampling variance",
        x_name="estimator",
        rows=rows,
    )


#: Figure id -> callable producing it with default (scaled-down) parameters.
ALL_FIGURES: Dict[str, Callable[..., object]] = {
    "5a": figure5a_graph_size_locality,
    "5b": figure5b_graph_size_no_locality,
    "6a": figure6a_density_locality,
    "6b": figure6b_density_no_locality,
    "7a": figure7a_budget_locality,
    "7b": figure7b_budget_no_locality,
    "8": figure8_wsn,
    "9": figure9_real_world,
    "param-c": parameter_c_sweep,
    "variance": estimator_variance_ablation,
}

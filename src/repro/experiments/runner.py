"""Batch runner: regenerate every figure and write the results to disk.

``run_all_figures`` executes each figure reproduction (at the provided
configuration) and writes one CSV per figure plus a Markdown summary
table into an output directory — the artefacts a reproduction report
links to.  The CLI exposes it as ``repro-flow experiment --figure all``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import ALL_FIGURES, FigureResult
from repro.experiments.reporting import compare_algorithms, format_table, rows_to_csv
from repro.runtime import session as runtime_session

PathLike = Union[str, Path]


@dataclass
class FigureArtifacts:
    """Where one figure's regenerated data was written."""

    figure: str
    description: str
    csv_path: Optional[Path]
    n_rows: int
    algorithm_means: Dict[str, float] = field(default_factory=dict)


def _normalise(result) -> List[FigureResult]:
    """Figure functions return either one FigureResult or a dict of panels."""
    if isinstance(result, FigureResult):
        return [result]
    if isinstance(result, dict):
        return list(result.values())
    raise TypeError(f"unexpected figure result type {type(result)!r}")


def run_all_figures(
    output_dir: Optional[PathLike] = None,
    figures: Optional[Sequence[str]] = None,
    config: Optional[ExperimentConfig] = None,
) -> List[FigureArtifacts]:
    """Run the selected figure reproductions and write their CSVs.

    Parameters
    ----------
    output_dir:
        Directory for the CSV files and the ``SUMMARY.md``; ``None``
        skips writing and only returns the in-memory artefact records.
    figures:
        Figure ids (keys of :data:`ALL_FIGURES`); defaults to all of them.
    config:
        Experiment configuration passed to every figure that accepts one.
    """
    selected = list(figures) if figures is not None else sorted(ALL_FIGURES)
    unknown = [figure for figure in selected if figure not in ALL_FIGURES]
    if unknown:
        raise ValueError(f"unknown figure ids {unknown!r}; known: {sorted(ALL_FIGURES)}")
    directory = None
    if output_dir is not None:
        directory = Path(output_dir)
        directory.mkdir(parents=True, exist_ok=True)

    if config is not None and config.world_cache_size:
        # one session-scoped, explicitly sized world cache for the whole
        # multi-figure run, so service-backed evaluations in different
        # figures reuse each other's sampled batches; session exit restores
        # the enclosing cache (and drops this one's entries) even on error
        with runtime_session(world_cache=config.world_cache_size):
            return _run_selected_figures(selected, directory, config)
    return _run_selected_figures(selected, directory, config)


def _run_selected_figures(
    selected: Sequence[str],
    directory: Optional[Path],
    config: Optional[ExperimentConfig],
) -> List[FigureArtifacts]:
    artifacts: List[FigureArtifacts] = []
    for figure_id in selected:
        figure_fn = ALL_FIGURES[figure_id]
        if figure_id == "variance":
            result = figure_fn()
        else:
            result = figure_fn(config=config) if config is not None else figure_fn()
        for panel in _normalise(result):
            csv_path = None
            if directory is not None:
                csv_path = directory / f"figure_{panel.figure.replace('/', '_')}.csv"
                csv_path.write_text(rows_to_csv(panel.rows) + "\n", encoding="utf-8")
            artifacts.append(
                FigureArtifacts(
                    figure=panel.figure,
                    description=panel.description,
                    csv_path=csv_path,
                    n_rows=len(panel.rows),
                    algorithm_means=compare_algorithms(panel.rows)
                    if panel.rows and "algorithm" in panel.rows[0]
                    else {},
                )
            )
    if directory is not None:
        _write_summary(directory, artifacts)
    return artifacts


def _write_summary(directory: Path, artifacts: List[FigureArtifacts]) -> None:
    """Write a Markdown overview of every regenerated figure."""
    lines = [
        "# Regenerated evaluation figures",
        "",
        "One CSV per figure panel; `evaluated_flow` and `elapsed_seconds` are",
        "the two series each figure of the paper plots.",
        "",
        "| figure | description | rows | csv | mean evaluated flow per algorithm |",
        "|---|---|---|---|---|",
    ]
    for artifact in artifacts:
        means = ", ".join(
            f"{name}: {value:.2f}" for name, value in sorted(artifact.algorithm_means.items())
        )
        csv_name = artifact.csv_path.name if artifact.csv_path is not None else "-"
        lines.append(
            f"| {artifact.figure} | {artifact.description} | {artifact.n_rows} "
            f"| {csv_name} | {means or '-'} |"
        )
    (directory / "SUMMARY.md").write_text("\n".join(lines) + "\n", encoding="utf-8")


def summary_table(artifacts: List[FigureArtifacts]) -> str:
    """Render the artefact list as an ASCII table (used by the CLI)."""
    rows = [
        {
            "figure": artifact.figure,
            "rows": artifact.n_rows,
            "csv": artifact.csv_path.name if artifact.csv_path else "-",
            "description": artifact.description,
        }
        for artifact in artifacts
    ]
    return format_table(rows, title="Regenerated figures")

"""Multi-node sharded sampling: wire protocol, remote executor, cache ring.

The distributed tier extends the :mod:`repro.parallel` determinism
contract — results are a pure function of ``(seed, n_samples,
shard_size)``, never of scheduling — across machines:

* :mod:`repro.distributed.wire` — the versioned JSONL wire protocol
  (shard tasks with their pre-split seeds, base64 ``.npy`` partials,
  typed error envelopes);
* :mod:`repro.distributed.worker` — the worker agent process
  (``repro-flow worker --connect HOST:PORT``);
* :mod:`repro.distributed.coordinator` — :class:`RemoteExecutor`, a
  drop-in :class:`~repro.parallel.SamplingExecutor` that scatters
  shards over the fleet, reduces partials in shard order, and retries
  through worker deaths, disconnects and timeouts without changing a
  bit;
* :mod:`repro.distributed.cache` — :class:`HashRing` +
  :class:`RingWorldCache`, sharding the digest-keyed world cache over
  the fleet with ``invalidate_graph`` fan-out;
* :mod:`repro.distributed.testing` — :func:`local_fleet`, a real
  loopback deployment for tests and benchmarks.

Entry points: ``repro.RemoteExecutor(...)`` directly, the
``workers="remote:HOST:PORT"`` spec anywhere an executor spec goes
(:class:`repro.RuntimeConfig`, ``repro.session``, ``--workers``), and
``RemoteExecutor.world_cache()`` for the fleet-sharded cache.
"""

from repro.distributed.cache import HashRing, RingWorldCache
from repro.distributed.coordinator import RemoteExecutor
from repro.distributed.testing import Fleet, local_fleet
from repro.distributed.worker import WorkerAgent

__all__ = [
    "Fleet",
    "HashRing",
    "RemoteExecutor",
    "RingWorldCache",
    "WorkerAgent",
    "local_fleet",
]

"""The distributed coordinator: a ``RemoteExecutor`` scattering shards.

:class:`RemoteExecutor` implements the
:class:`~repro.parallel.executor.SamplingExecutor` interface — it is a
drop-in wherever a :class:`SerialExecutor`/:class:`ProcessExecutor`
goes (``Session``, ``RuntimeConfig(workers=...)``, the engine, the
service tier) — but fans shards out over worker *processes on other
machines* speaking the :mod:`repro.distributed.wire` protocol.

**The determinism contract survives the network.**  Every shard carries
its own pre-split seed, so it computes the same block on any worker; the
coordinator reduces partials **in shard order**, never completion
order.  Retries are bit-safe for the same reason: re-running a shard on
a different worker after a death, disconnect or timeout reproduces the
identical array.  Together: same bits as ``SerialExecutor`` for any
fleet size, any scheduling, any failure pattern short of exhausting the
retry budget.

Robustness model
----------------
* **Worker death / disconnect** — the link's reader thread sees EOF and
  every shard in flight on that link is reassigned (attempt count + 1).
* **Hung worker** — each dispatched shard has a deadline
  (``task_timeout``); past it the link is declared dead and dropped,
  which funnels into the same reassignment path.
* **Typed worker errors** — an ``error`` envelope consumes one attempt
  for that shard but keeps the (healthy, responsive) worker.
* **Retry budget** — a shard failing more than ``max_task_retries``
  times across distinct assignments raises
  :class:`~repro.exceptions.ShardRetryExceededError`; same-shard
  failures on different workers indicate a systematic problem retries
  cannot fix.
* **Empty fleet** — with shards pending and no workers connected the
  coordinator waits up to ``worker_wait_timeout`` for one to (re)join
  before raising :class:`~repro.exceptions.NoWorkersError`, so a worker
  restart mid-run is survivable.
* **Heartbeats** — idle links are pinged every ``heartbeat_interval``
  seconds and dropped after ``heartbeat_timeout`` of silence; busy links
  are governed by task deadlines instead (workers are single-threaded —
  a worker mid-shard legitimately answers nothing).
"""

from __future__ import annotations

import itertools
import logging
import queue
import socket
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import NoWorkersError, ShardRetryExceededError
from repro.parallel.executor import SamplingExecutor, ShardTask
from repro.telemetry import current_telemetry
from repro.distributed import wire
from repro.distributed.cache import HashRing

logger = logging.getLogger(__name__)


class _WorkerLink:
    """Coordinator-side state for one registered worker connection."""

    def __init__(
        self, channel: wire.LineChannel, index: int, name: str, pid: int, backends: List[str]
    ) -> None:
        self.channel = channel
        self.index = index
        self.name = name
        self.pid = pid
        self.backends = tuple(backends)
        #: problem digests already pushed down this connection
        self.pushed: set = set()
        self.alive = True
        self.last_seen = time.monotonic()
        #: cache-RPC correlation: request id -> (event, one-slot box)
        self.rpc_waiters: Dict[int, Tuple[threading.Event, List[object]]] = {}
        self.rpc_lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<WorkerLink #{self.index} {self.name} alive={self.alive}>"

    def send(self, message: Dict[str, object]) -> bool:
        """Send, reporting failure instead of raising (dead peer = False)."""
        try:
            self.channel.send(message)
            return True
        except OSError:
            return False

    def fail_rpcs(self) -> None:
        """Wake every cache RPC still waiting on this (now dead) link."""
        with self.rpc_lock:
            waiters = list(self.rpc_waiters.values())
            self.rpc_waiters.clear()
        for event, _box in waiters:
            event.set()


class _Outstanding:
    """One dispatched shard: where it ran and when it must be back."""

    __slots__ = ("shard_index", "link", "deadline", "submitted_at")

    def __init__(self, shard_index: int, link: _WorkerLink, deadline: float, submitted_at: float) -> None:
        self.shard_index = shard_index
        self.link = link
        self.deadline = deadline
        self.submitted_at = submitted_at


class RemoteExecutor(SamplingExecutor):
    """Scatter shards over remote workers; gather bit-identical partials.

    Parameters
    ----------
    host, port:
        Endpoint to listen on for worker registrations (``port=0`` binds
        an ephemeral port — read it back from :attr:`address`).
    tasks_per_worker:
        In-flight shard bound per worker (pipelining depth).  2 keeps a
        single-threaded worker busy while its previous result is on the
        wire without hoarding shards a faster worker could steal.
    task_timeout:
        Per-shard deadline in seconds; expiry drops the worker.
    heartbeat_interval / heartbeat_timeout:
        Idle-link ping cadence and silence tolerance.
    max_task_retries:
        Extra attempts a shard may consume across reassignments.
    worker_wait_timeout:
        How long ``map_shards`` tolerates an empty fleet before raising
        :class:`NoWorkersError`.
    rpc_timeout:
        Deadline for cache-ring fetches (a timeout degrades to a miss).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        tasks_per_worker: int = 2,
        task_timeout: float = 300.0,
        heartbeat_interval: float = 2.0,
        heartbeat_timeout: float = 10.0,
        max_task_retries: int = 3,
        worker_wait_timeout: float = 60.0,
        rpc_timeout: float = 5.0,
    ) -> None:
        if tasks_per_worker <= 0:
            raise ValueError(f"tasks_per_worker must be positive, got {tasks_per_worker!r}")
        if max_task_retries < 0:
            raise ValueError(f"max_task_retries must be >= 0, got {max_task_retries!r}")
        self.tasks_per_worker = int(tasks_per_worker)
        self.task_timeout = float(task_timeout)
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.max_task_retries = int(max_task_retries)
        self.worker_wait_timeout = float(worker_wait_timeout)
        self.rpc_timeout = float(rpc_timeout)

        self.closed = False
        self._closing = False
        #: lifetime counters (monotone; also mirrored into telemetry)
        self.tasks_dispatched = 0
        self.retries = 0
        self.worker_deaths = 0

        self._links: Dict[int, _WorkerLink] = {}
        self._links_lock = threading.Lock()
        self._ring = HashRing()
        self._events: "queue.Queue[Tuple[str, Optional[_WorkerLink], Optional[dict]]]" = queue.Queue()
        self._task_ids = itertools.count(1)
        self._rpc_ids = itertools.count(1)
        self._worker_indices = itertools.count(0)
        # one map_shards at a time; close() takes it too, so closing
        # waits for an in-progress scatter/gather to drain
        self._map_lock = threading.Lock()

        self._listener = socket.create_server((host, int(port)))
        self._address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-dist-accept", daemon=True
        )
        self._accept_thread.start()
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop, name="repro-dist-heartbeat", daemon=True
        )
        self._heartbeat_thread.start()

    # introspection ----------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` workers connect to."""
        return self._address

    @property
    def workers(self) -> int:
        """Connected worker count (≥ 1 so shard planning never degenerates)."""
        with self._links_lock:
            return max(1, len(self._links))

    def worker_names(self) -> List[str]:
        with self._links_lock:
            return [link.name for link in self._links.values()]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        host, port = self._address
        return f"<RemoteExecutor {host}:{port} workers={len(self._links)}>"

    def wait_for_workers(self, count: int, timeout: float = 30.0) -> None:
        """Block until ``count`` workers are registered (or raise)."""
        deadline = time.monotonic() + timeout
        while True:
            with self._links_lock:
                if len(self._links) >= count:
                    return
            if time.monotonic() >= deadline:
                raise NoWorkersError(
                    "%s:%d" % self._address, timeout
                )
            time.sleep(0.02)

    # fleet membership -------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed: shutting down
            if self._closing:
                sock.close()
                return
            channel = wire.LineChannel(sock)
            try:
                hello = channel.recv(timeout=self.rpc_timeout)
            except Exception:
                channel.close()
                continue
            if (
                not isinstance(hello, dict)
                or hello.get("kind") != wire.MSG_REGISTER
                or hello.get("version") != wire.WIRE_VERSION
            ):
                detail = (
                    f"coordinator speaks wire protocol v{wire.WIRE_VERSION}, "
                    f"got registration {hello!r}"
                )
                try:
                    channel.send(wire.error_message(wire.ERR_VERSION, detail))
                except OSError:
                    pass
                channel.close()
                continue
            link = _WorkerLink(
                channel,
                index=next(self._worker_indices),
                name=str(hello.get("worker", "?")),
                pid=int(hello.get("pid", -1)),
                backends=list(hello.get("backends", ())),
            )
            if not link.send(wire.registered_message(link.index)):
                channel.close()
                continue
            with self._links_lock:
                self._links[link.index] = link
                self._ring.add(link.index, link)
            reader = threading.Thread(
                target=self._reader_loop,
                args=(link,),
                name=f"repro-dist-reader-{link.index}",
                daemon=True,
            )
            reader.start()
            logger.info("worker %s (pid %d) joined as #%d", link.name, link.pid, link.index)
            tel = current_telemetry()
            if tel.enabled:
                tel.count("distributed.worker_joins")
            self._events.put(("joined", link, None))

    def _reader_loop(self, link: _WorkerLink) -> None:
        while True:
            try:
                message = link.channel.recv()
            except (ValueError, OSError):
                message = None
            if message is None:
                break
            link.last_seen = time.monotonic()
            kind = message.get("kind")
            if kind in (wire.MSG_RESULT, wire.MSG_ERROR):
                self._events.put((kind, link, message))
            elif kind == wire.MSG_CACHE_ENTRY:
                self._resolve_rpc(link, message)
            elif kind == wire.MSG_PONG:
                pass  # last_seen updated above is the whole point
        self._drop_link(link, reason="connection closed")

    def _drop_link(self, link: _WorkerLink, reason: str) -> None:
        with self._links_lock:
            present = self._links.pop(link.index, None) is not None
            if present:
                self._ring.remove(link.index)
        link.alive = False
        link.channel.close()
        link.fail_rpcs()
        if present:
            self.worker_deaths += 1
            logger.warning("worker %s (#%d) dropped: %s", link.name, link.index, reason)
            tel = current_telemetry()
            if tel.enabled:
                tel.count("distributed.worker_deaths")
            self._events.put(("dead", link, None))

    def _heartbeat_loop(self) -> None:
        while not self._closing:
            time.sleep(self.heartbeat_interval)
            if self._closing:
                return
            now = time.monotonic()
            with self._links_lock:
                links = list(self._links.values())
            for link in links:
                if not link.alive:
                    continue
                silent = now - link.last_seen
                if silent > self.heartbeat_timeout and not self._busy(link):
                    self._drop_link(
                        link, reason=f"no heartbeat for {silent:.1f}s"
                    )
                elif silent > self.heartbeat_interval:
                    link.send({"kind": wire.MSG_PING})

    def _busy(self, link: _WorkerLink) -> bool:
        """Links with shards in flight answer via results, not pongs."""
        busy = self._busy_links
        return busy is not None and link.index in busy

    #: link indices with shards in flight during the current map_shards
    _busy_links: Optional[set] = None

    # scatter / gather -------------------------------------------------
    def map_shards(self, tasks: Sequence[ShardTask]) -> List[np.ndarray]:
        tasks = list(tasks)
        if not tasks:
            return []
        if self.closed:
            raise RuntimeError("RemoteExecutor is closed")
        tel = current_telemetry()
        with self._map_lock:
            if not tel.enabled:
                return self._scatter_gather(tasks, tel)
            with tel.span(
                "distributed.map_shards",
                executor="remote",
                workers=self.workers,
                n_shards=len(tasks),
            ):
                return self._scatter_gather(tasks, tel)

    def _scatter_gather(self, tasks: List[ShardTask], tel) -> List[np.ndarray]:
        n = len(tasks)
        results: List[Optional[np.ndarray]] = [None] * n
        attempts = [0] * n
        pending: List[int] = list(range(n))  # stack; order never matters for bits
        outstanding: Dict[int, _Outstanding] = {}
        inflight_per_link: Dict[int, int] = {}
        self._busy_links = set()
        completed = 0
        fleet_empty_since: Optional[float] = None
        try:
            while completed < n:
                # 1. requeue shards stranded on links that died
                #    (scan is O(outstanding); fleets are small)
                now = time.monotonic()
                for task_id, entry in list(outstanding.items()):
                    if entry.link.alive and now < entry.deadline:
                        continue
                    del outstanding[task_id]
                    inflight_per_link[entry.link.index] = (
                        inflight_per_link.get(entry.link.index, 1) - 1
                    )
                    if entry.link.alive:
                        # deadline blown: the worker is hung, not slow —
                        # drop it so its sibling shards requeue too
                        self._drop_link(
                            entry.link,
                            reason=f"shard exceeded {self.task_timeout:.1f}s deadline",
                        )
                    self._requeue(entry.shard_index, attempts, pending, tel)
                # 2. dispatch to capacity
                for link in self._alive_links():
                    while pending and inflight_per_link.get(link.index, 0) < self.tasks_per_worker:
                        shard_index = pending.pop()
                        if not self._dispatch(link, shard_index, tasks[shard_index], outstanding, tel):
                            pending.append(shard_index)
                            break
                        inflight_per_link[link.index] = inflight_per_link.get(link.index, 0) + 1
                self._busy_links = {
                    index for index, count in inflight_per_link.items() if count > 0
                }
                # 3. empty-fleet watchdog
                if not outstanding and pending:
                    if not self._alive_links():
                        if fleet_empty_since is None:
                            fleet_empty_since = time.monotonic()
                        elif time.monotonic() - fleet_empty_since > self.worker_wait_timeout:
                            raise NoWorkersError(
                                "%s:%d" % self._address,
                                self.worker_wait_timeout,
                            )
                    else:
                        fleet_empty_since = None
                else:
                    fleet_empty_since = None
                # 4. wait for the next event, bounded by the nearest deadline
                timeout = 0.25
                if outstanding:
                    nearest = min(entry.deadline for entry in outstanding.values())
                    timeout = min(max(nearest - time.monotonic(), 0.01), 1.0)
                try:
                    kind, link, message = self._events.get(timeout=timeout)
                except queue.Empty:
                    continue
                if kind == wire.MSG_RESULT:
                    entry = outstanding.pop(int(message["id"]), None)
                    if entry is None or entry.link is not link:
                        continue  # stale: the shard was reassigned meanwhile
                    inflight_per_link[link.index] = inflight_per_link.get(link.index, 1) - 1
                    results[entry.shard_index] = wire.decode_array(message["data"])
                    completed += 1
                    if tel.enabled:
                        roundtrip = time.monotonic() - entry.submitted_at
                        seconds = float(message.get("seconds", 0.0))
                        tel.observe("distributed.shard_seconds", seconds)
                        tel.observe(
                            "distributed.queue_wait_seconds",
                            max(0.0, roundtrip - seconds),
                        )
                elif kind == wire.MSG_ERROR:
                    task_id = message.get("id")
                    entry = outstanding.pop(task_id, None) if isinstance(task_id, int) else None
                    if entry is None:
                        error = message.get("error", {})
                        logger.warning(
                            "worker %s reported: %s", link.name, error.get("message", "?")
                        )
                        continue
                    inflight_per_link[link.index] = inflight_per_link.get(link.index, 1) - 1
                    error = message.get("error", {})
                    self._requeue(
                        entry.shard_index,
                        attempts,
                        pending,
                        tel,
                        detail=f"{error.get('type', '?')}: {error.get('message', '?')}",
                    )
                # "joined"/"dead" events just wake the loop; steps 1-2
                # re-derive the fleet state from the authoritative dicts
            return results  # type: ignore[return-value]  # all slots filled
        finally:
            self._busy_links = None

    def _alive_links(self) -> List[_WorkerLink]:
        with self._links_lock:
            return [link for link in self._links.values() if link.alive]

    def _dispatch(
        self,
        link: _WorkerLink,
        shard_index: int,
        task: ShardTask,
        outstanding: Dict[int, _Outstanding],
        tel,
    ) -> bool:
        """Push (problem if new +) one task down a link; False if it died."""
        digest = wire.problem_digest(task.problem)
        if digest not in link.pushed:
            if not link.send(wire.problem_message(digest, task.problem)):
                self._drop_link(link, reason="send failed")
                return False
            link.pushed.add(digest)
        task_id = next(self._task_ids)
        message = wire.task_message(task_id, task)  # WireFormatError propagates: caller bug
        if not link.send(message):
            self._drop_link(link, reason="send failed")
            return False
        now = time.monotonic()
        outstanding[task_id] = _Outstanding(
            shard_index, link, now + self.task_timeout, now
        )
        self.tasks_dispatched += 1
        if tel.enabled:
            tel.count("distributed.tasks_dispatched")
        return True

    def _requeue(
        self,
        shard_index: int,
        attempts: List[int],
        pending: List[int],
        tel,
        detail: str = "",
    ) -> None:
        attempts[shard_index] += 1
        if attempts[shard_index] > self.max_task_retries:
            raise ShardRetryExceededError(shard_index, attempts[shard_index], detail)
        self.retries += 1
        if tel.enabled:
            tel.count("distributed.retries")
        pending.append(shard_index)

    # cache-ring plumbing (used by RingWorldCache) ---------------------
    def ring_node(self, digest: int) -> Optional[_WorkerLink]:
        """The worker owning ``digest`` on the consistent-hash ring."""
        with self._links_lock:
            return self._ring.node_for(digest)

    def cache_fetch(self, key_digest: int) -> Optional[Dict[str, object]]:
        """Fetch an encoded entry from the ring (``None`` = miss/degraded)."""
        link = self.ring_node(key_digest)
        if link is None:
            return None
        rpc_id = next(self._rpc_ids)
        event = threading.Event()
        box: List[object] = [None]
        with link.rpc_lock:
            link.rpc_waiters[rpc_id] = (event, box)
        sent = link.send(
            {"kind": wire.MSG_CACHE_GET, "id": rpc_id, "key": int(key_digest)}
        )
        if not sent or not event.wait(self.rpc_timeout):
            with link.rpc_lock:
                link.rpc_waiters.pop(rpc_id, None)
            return None
        entry = box[0]
        return entry if isinstance(entry, dict) else None

    def _resolve_rpc(self, link: _WorkerLink, message: Dict[str, object]) -> None:
        rpc_id = message.get("id")
        with link.rpc_lock:
            waiter = link.rpc_waiters.pop(rpc_id, None)
        if waiter is not None:
            event, box = waiter
            box[0] = message.get("entry")
            event.set()

    def cache_store(self, key_digest: int, graph_digest: int, entry: Dict[str, object]) -> bool:
        """Fire-and-forget store of an encoded entry on its ring owner."""
        link = self.ring_node(key_digest)
        if link is None:
            return False
        return link.send(
            {
                "kind": wire.MSG_CACHE_PUT,
                "key": int(key_digest),
                "graph": int(graph_digest),
                "entry": entry,
            }
        )

    def cache_invalidate_all(self, graph_digest: int) -> None:
        """Fan ``cache_invalidate`` out to every connected worker."""
        for link in self._alive_links():
            link.send({"kind": wire.MSG_CACHE_INVALIDATE, "graph": int(graph_digest)})

    def cache_clear_all(self) -> None:
        for link in self._alive_links():
            link.send({"kind": wire.MSG_CACHE_CLEAR})

    def world_cache(self, max_entries: int = 64) -> "RingWorldCache":
        """A :class:`RingWorldCache` sharded over this executor's fleet."""
        from repro.distributed.cache import RingWorldCache

        return RingWorldCache(self, max_entries=max_entries)

    # lifecycle --------------------------------------------------------
    def close(self) -> None:
        """Drain, tell workers to shut down, release every thread/socket."""
        if self.closed:
            return
        self._closing = True
        with self._map_lock:  # graceful drain: let an in-flight map finish
            self.closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._links_lock:
            links = list(self._links.values())
            self._links.clear()
        for link in links:
            link.send({"kind": wire.MSG_SHUTDOWN})
            link.channel.close()
            link.fail_rpcs()
        self._accept_thread.join(timeout=2.0)
        self._heartbeat_thread.join(timeout=self.heartbeat_interval + 2.0)

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown timing
        try:
            if not self.closed:
                self.close()
        except Exception:
            pass


__all__ = ["RemoteExecutor"]

"""The distributed executor's versioned JSONL wire protocol.

One JSON object per ``\\n``-terminated line, in both directions, reusing
the codec of :mod:`repro.server.protocol` — a worker needs nothing
beyond a line-oriented socket and a JSON parser.  Message ``kind``s:

================  ====  =====================================================
kind              dir   payload
================  ====  =====================================================
``register``      w→c   protocol version, worker name, pid, backend names
``registered``    c→w   acceptance + the worker's fleet index
``problem``       c→w   a full :class:`SamplingProblem` keyed by its content
                        digest (pushed once per connection, before the first
                        task that references it)
``task``          c→w   one :class:`~repro.parallel.ShardTask`: problem
                        digest, world count, the shard's pre-split
                        SeedSequence (entropy + spawn key), backend name
``result``        w→c   the shard's boolean matrix as a base64 ``.npy``
                        payload plus the in-worker runtime
``error``         w→c   typed error envelope (same shape as the serving
                        tier's: ``{"type": ..., "message": ...}``)
``ping``/``pong``  both  heartbeat
``cache_put``     c→w   store one serialized world batch under a key digest
``cache_get``     c→w   fetch a stored batch (``cache_entry`` answers)
``cache_entry``   w→c   the fetched batch payload, or ``null`` for a miss
``cache_invalidate`` c→w  drop every stored batch of one graph digest
``cache_clear``   c→w   drop everything
``shutdown``      c→w   drain and exit
================  ====  =====================================================

**Determinism on the wire.**  Arrays travel as base64 of their ``.npy``
serialization (:func:`numpy.save`), which round-trips dtype, shape and
bytes exactly; seeds travel as the *(entropy, spawn key)* pair that
defines a :class:`numpy.random.SeedSequence`, which reconstructs the
identical stream on any machine.  A shard evaluated remotely therefore
returns byte-for-byte what :class:`~repro.parallel.SerialExecutor` would
have produced locally.
"""

from __future__ import annotations

import base64
import hashlib
import io
import json
import socket
import threading
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import-time only
    from repro.reachability.engine import FlipBatch, WorldBatch

from repro.exceptions import TransportTimeoutError, WireFormatError
from repro.parallel.executor import ShardTask
from repro.reachability.backends import backend_names
from repro.reachability.backends.base import SamplingProblem
from repro.server.protocol import decode_line, encode_line

#: Protocol version; a worker and coordinator must agree exactly.
WIRE_VERSION = 1

# message kinds ---------------------------------------------------------
MSG_REGISTER = "register"
MSG_REGISTERED = "registered"
MSG_PROBLEM = "problem"
MSG_TASK = "task"
MSG_RESULT = "result"
MSG_ERROR = "error"
MSG_PING = "ping"
MSG_PONG = "pong"
MSG_CACHE_PUT = "cache_put"
MSG_CACHE_GET = "cache_get"
MSG_CACHE_ENTRY = "cache_entry"
MSG_CACHE_INVALIDATE = "cache_invalidate"
MSG_CACHE_CLEAR = "cache_clear"
MSG_SHUTDOWN = "shutdown"

#: Error ``type`` values in worker error envelopes.
ERR_VERSION = "version_mismatch"
ERR_BAD_MESSAGE = "bad_message"
ERR_UNKNOWN_PROBLEM = "unknown_problem"
ERR_UNKNOWN_BACKEND = "unknown_backend"
ERR_EVALUATION = "evaluation_failed"


# array / seed / problem codecs ----------------------------------------
def encode_array(array: np.ndarray) -> str:
    """Serialize an array to base64 ``.npy`` bytes (exact round-trip)."""
    buffer = io.BytesIO()
    np.save(buffer, np.ascontiguousarray(array), allow_pickle=False)
    return base64.b64encode(buffer.getvalue()).decode("ascii")


def decode_array(payload: str) -> np.ndarray:
    """Inverse of :func:`encode_array` (``WireFormatError`` on garbage)."""
    try:
        raw = base64.b64decode(payload.encode("ascii"), validate=True)
        return np.load(io.BytesIO(raw), allow_pickle=False)
    except (ValueError, OSError) as error:
        raise WireFormatError(f"undecodable array payload: {error}") from error


def encode_seed_sequence(seed: np.random.SeedSequence) -> Dict[str, object]:
    """The *(entropy, spawn key)* pair that reconstructs ``seed`` exactly."""
    entropy = seed.entropy
    if isinstance(entropy, (list, tuple)):
        entropy = [int(word) for word in entropy]
    elif entropy is not None:
        entropy = int(entropy)
    return {
        "entropy": entropy,
        "spawn_key": [int(key) for key in seed.spawn_key],
        "pool_size": int(seed.pool_size),
    }


def decode_seed_sequence(payload: Dict[str, object]) -> np.random.SeedSequence:
    """Rebuild the identical :class:`~numpy.random.SeedSequence`."""
    try:
        return np.random.SeedSequence(
            entropy=payload["entropy"],
            spawn_key=tuple(payload.get("spawn_key", ())),
            pool_size=int(payload.get("pool_size", 4)),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise WireFormatError(f"undecodable seed payload {payload!r}") from error


def problem_digest(problem: SamplingProblem) -> int:
    """Stable 128-bit content digest of an indexed sampling problem.

    Hashes the vertex-id mapping, both endpoint arrays, the probability
    array and the source index — everything a shard's result is a
    function of besides its seed — so a problem is pushed to each worker
    connection exactly once however many shards reference it.  Cached on
    the (frozen) problem instance.
    """
    cached = problem.__dict__.get("_wire_digest")
    if cached is None:
        hasher = hashlib.blake2b(digest_size=16)
        hasher.update(repr(problem.vertex_ids).encode("utf-8"))
        hasher.update(np.ascontiguousarray(problem.edge_u).tobytes())
        hasher.update(np.ascontiguousarray(problem.edge_v).tobytes())
        hasher.update(np.ascontiguousarray(problem.probabilities).tobytes())
        hasher.update(str(int(problem.source)).encode("utf-8"))
        cached = int.from_bytes(hasher.digest(), "little")
        object.__setattr__(problem, "_wire_digest", cached)
    return cached


def encode_problem(problem: SamplingProblem) -> Dict[str, object]:
    """Serialize a :class:`SamplingProblem` (vertex ids must be JSON-safe)."""
    payload = {
        "vertex_ids": list(problem.vertex_ids),
        "edge_u": encode_array(problem.edge_u),
        "edge_v": encode_array(problem.edge_v),
        "probabilities": encode_array(problem.probabilities),
        "source": int(problem.source),
    }
    try:
        json.dumps(payload["vertex_ids"])
    except (TypeError, ValueError) as error:
        raise WireFormatError(
            f"vertex ids are not JSON-representable and cannot cross the "
            f"wire: {error}"
        ) from error
    return payload


def decode_problem(payload: Dict[str, object]) -> SamplingProblem:
    """Inverse of :func:`encode_problem` (layout is rebuilt worker-side)."""
    try:
        return SamplingProblem(
            vertex_ids=tuple(payload["vertex_ids"]),
            edge_u=decode_array(payload["edge_u"]),
            edge_v=decode_array(payload["edge_v"]),
            probabilities=decode_array(payload["probabilities"]),
            source=int(payload["source"]),
        )
    except (KeyError, TypeError) as error:
        raise WireFormatError(f"undecodable problem payload: {error}") from error


def encode_world_batch(batch: "WorldBatch") -> Dict[str, object]:
    """Serialize a :class:`~repro.reachability.engine.WorldBatch` entry."""
    return {
        "problem": encode_problem(batch.problem),
        "reached": encode_array(batch.reached),
    }


def decode_world_batch(payload: Dict[str, object]) -> "WorldBatch":
    """Inverse of :func:`encode_world_batch`, bit-for-bit."""
    from repro.reachability.engine import WorldBatch

    try:
        return WorldBatch(
            problem=decode_problem(payload["problem"]),
            reached=decode_array(payload["reached"]),
        )
    except (KeyError, TypeError) as error:
        raise WireFormatError(f"undecodable world-batch payload: {error}") from error


def encode_flip_batch(batch: "FlipBatch") -> Dict[str, object]:
    """Serialize a :class:`~repro.reachability.engine.FlipBatch` entry."""
    return {
        "problem": encode_problem(batch.problem),
        "flips": encode_array(batch.flips),
    }


def decode_flip_batch(payload: Dict[str, object]) -> "FlipBatch":
    """Inverse of :func:`encode_flip_batch`, bit-for-bit."""
    from repro.reachability.engine import FlipBatch

    try:
        return FlipBatch(
            problem=decode_problem(payload["problem"]),
            flips=decode_array(payload["flips"]),
        )
    except (KeyError, TypeError) as error:
        raise WireFormatError(f"undecodable flip-batch payload: {error}") from error


def encode_backend(backend: Optional[object]) -> Optional[str]:
    """A backend crosses the wire as its registry name (``None`` = raw flips)."""
    if backend is None:
        return None
    name = getattr(backend, "name", None)
    if not isinstance(name, str) or name not in backend_names():
        raise WireFormatError(
            f"backend {backend!r} has no registry name and cannot be shipped "
            f"to remote workers; register it (repro.reachability.backends."
            f"register_backend) on every worker and pass the named backend"
        )
    return name


# message builders ------------------------------------------------------
def register_message(worker: str, pid: int, backends: List[str]) -> Dict[str, object]:
    return {
        "kind": MSG_REGISTER,
        "version": WIRE_VERSION,
        "worker": worker,
        "pid": int(pid),
        "backends": list(backends),
    }


def registered_message(worker_index: int) -> Dict[str, object]:
    return {"kind": MSG_REGISTERED, "ok": True, "worker_index": int(worker_index)}


def problem_message(digest: int, problem: SamplingProblem) -> Dict[str, object]:
    return {"kind": MSG_PROBLEM, "digest": int(digest), "problem": encode_problem(problem)}


def task_message(task_id: int, task: ShardTask) -> Dict[str, object]:
    return {
        "kind": MSG_TASK,
        "id": int(task_id),
        "problem": problem_digest(task.problem),
        "n_samples": int(task.n_samples),
        "seed": encode_seed_sequence(task.seed),
        "backend": encode_backend(task.backend),
    }


def result_message(task_id: int, array: np.ndarray, seconds: float) -> Dict[str, object]:
    return {
        "kind": MSG_RESULT,
        "id": int(task_id),
        "data": encode_array(array),
        "seconds": float(seconds),
    }


def error_message(error_type: str, message: str, task_id: Optional[int] = None) -> Dict[str, object]:
    envelope: Dict[str, object] = {
        "kind": MSG_ERROR,
        "error": {"type": error_type, "message": message},
    }
    if task_id is not None:
        envelope["id"] = int(task_id)
    return envelope


def decode_task(
    message: Dict[str, object], problems: Dict[int, SamplingProblem], backends: Dict[str, object]
) -> Tuple[int, ShardTask]:
    """Rebuild a :class:`ShardTask` worker-side from a ``task`` message.

    ``problems`` maps pushed problem digests to decoded problems;
    ``backends`` is the worker's cache of instantiated registry backends
    (missing names are resolved and cached here).  Raises
    :class:`WireFormatError` tagged via its message for the unknown-
    problem / unknown-backend cases so the worker can answer with the
    matching typed envelope.
    """
    from repro.reachability.backends import make_backend

    try:
        task_id = int(message["id"])
        digest = int(message["problem"])
        n_samples = int(message["n_samples"])
        seed = decode_seed_sequence(message["seed"])
        backend_name = message.get("backend")
    except (KeyError, TypeError, ValueError) as error:
        raise WireFormatError(f"malformed task message: {error}") from error
    problem = problems.get(digest)
    if problem is None:
        raise WireFormatError(f"{ERR_UNKNOWN_PROBLEM}: no pushed problem with digest {digest}")
    backend = None
    if backend_name is not None:
        backend = backends.get(backend_name)
        if backend is None:
            try:
                backend = make_backend(backend_name)
            except (ValueError, TypeError) as error:
                raise WireFormatError(f"{ERR_UNKNOWN_BACKEND}: {error}") from error
            backends[backend_name] = backend
    return task_id, ShardTask(
        problem=problem, n_samples=n_samples, seed=seed, backend=backend
    )


# transport -------------------------------------------------------------
class LineChannel:
    """One JSONL-over-TCP connection: locked writes, blocking framed reads.

    Thin and symmetric — both the coordinator's per-worker links and the
    worker's single upstream connection are a ``LineChannel``.  ``send``
    serializes whole lines under a lock so concurrent senders (the
    dispatch loop, the heartbeat thread, cache RPCs) never interleave
    bytes; ``recv`` returns ``None`` on EOF (the peer died or closed) and
    raises :class:`TransportTimeoutError` when a read deadline passes.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._reader = sock.makefile("rb")
        self._send_lock = threading.Lock()
        self.closed = False

    @classmethod
    def connect(
        cls, host: str, port: int, timeout: Optional[float] = None
    ) -> "LineChannel":
        """Open a channel to ``host:port`` (``TransportTimeoutError`` on delay)."""
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
        except socket.timeout as error:
            raise TransportTimeoutError(
                f"connecting to {host}:{port}", timeout or 0.0
            ) from error
        sock.settimeout(None)
        return cls(sock)

    @property
    def peer(self) -> str:
        try:
            host, port = self._sock.getpeername()[:2]
            return f"{host}:{port}"
        except OSError:
            return "<closed>"

    def send(self, message: Dict[str, object]) -> None:
        """Write one message line atomically (``OSError`` if the peer died)."""
        line = encode_line(message)
        with self._send_lock:
            self._sock.sendall(line)

    def recv(self, timeout: Optional[float] = None) -> Optional[Dict[str, object]]:
        """Read one message; ``None`` on EOF.

        A ``timeout`` arms a read deadline for this call only (used for
        the registration handshake); the steady-state loops read blocking
        and rely on EOF — a died peer closes the socket promptly, and
        hangs are governed by the coordinator's task deadlines instead of
        per-read timers.
        """
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            line = self._reader.readline()
        except socket.timeout as error:
            raise TransportTimeoutError("reading a protocol line", timeout or 0.0) from error
        finally:
            if timeout is not None:
                self._sock.settimeout(None)
        if not line:
            return None
        return decode_line(line)

    def close(self) -> None:
        """Close both directions (idempotent; unblocks a reader on recv)."""
        self.closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


__all__ = [
    "ERR_BAD_MESSAGE",
    "ERR_EVALUATION",
    "ERR_UNKNOWN_BACKEND",
    "ERR_UNKNOWN_PROBLEM",
    "ERR_VERSION",
    "LineChannel",
    "MSG_CACHE_CLEAR",
    "MSG_CACHE_ENTRY",
    "MSG_CACHE_GET",
    "MSG_CACHE_INVALIDATE",
    "MSG_CACHE_PUT",
    "MSG_ERROR",
    "MSG_PING",
    "MSG_PONG",
    "MSG_PROBLEM",
    "MSG_REGISTER",
    "MSG_REGISTERED",
    "MSG_RESULT",
    "MSG_SHUTDOWN",
    "MSG_TASK",
    "WIRE_VERSION",
    "decode_array",
    "decode_flip_batch",
    "decode_problem",
    "decode_seed_sequence",
    "decode_task",
    "decode_world_batch",
    "encode_array",
    "encode_backend",
    "encode_flip_batch",
    "encode_problem",
    "encode_seed_sequence",
    "encode_world_batch",
    "error_message",
    "problem_digest",
    "problem_message",
    "register_message",
    "registered_message",
    "result_message",
    "task_message",
]

"""Test/bench helper: a coordinator plus local subprocess workers.

:func:`local_fleet` stands up a real distributed deployment on loopback
— a :class:`~repro.distributed.RemoteExecutor` on an ephemeral port and
``n_workers`` genuine ``python -m repro.distributed.worker`` subprocesses
registered with it — and tears everything down on exit.  Real processes
and real sockets on purpose: the invariance and fault-injection suites
exercise the exact production code path (a kill test can SIGKILL a
``Popen`` from :attr:`Fleet.processes` and watch the retry machinery),
not a mock.
"""

from __future__ import annotations

import os
import subprocess
import sys
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional

import repro
from repro.distributed.coordinator import RemoteExecutor


@dataclass
class Fleet:
    """A running loopback fleet: the executor plus its worker processes."""

    executor: RemoteExecutor
    processes: List[subprocess.Popen]

    @property
    def address(self) -> str:
        host, port = self.executor.address
        return f"{host}:{port}"

    def spawn_worker(self, shard_delay_ms: Optional[float] = None) -> subprocess.Popen:
        """Start and register one more worker subprocess."""
        before = len(self.executor.worker_names())
        process = _spawn_worker(self.address, shard_delay_ms)
        self.processes.append(process)
        self.executor.wait_for_workers(before + 1, timeout=30.0)
        return process


def _spawn_worker(address: str, shard_delay_ms: Optional[float]) -> subprocess.Popen:
    command = [
        sys.executable,
        "-m",
        "repro.distributed.worker",
        "--connect",
        address,
    ]
    if shard_delay_ms is not None:
        command += ["--shard-delay-ms", str(shard_delay_ms)]
    env = dict(os.environ)
    src_root = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = (
        src_root + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src_root
    )
    return subprocess.Popen(
        command,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


@contextmanager
def local_fleet(
    n_workers: int = 2,
    *,
    shard_delay_ms: Optional[float] = None,
    startup_timeout: float = 30.0,
    **executor_options,
) -> Iterator[Fleet]:
    """A registered loopback fleet, torn down (hard) on exit.

    Parameters
    ----------
    n_workers:
        Worker subprocesses to launch and wait for.
    shard_delay_ms:
        Per-shard pacing delay passed to every worker (fault-injection
        tests use it to widen the in-flight window they kill into).
    startup_timeout:
        Deadline for all workers to register.
    executor_options:
        Forwarded to :class:`RemoteExecutor` (timeouts, retry budget...).
    """
    executor = RemoteExecutor(port=0, **executor_options)
    processes: List[subprocess.Popen] = []
    fleet = Fleet(executor=executor, processes=processes)
    try:
        for _ in range(n_workers):
            processes.append(_spawn_worker(fleet.address, shard_delay_ms))
        if n_workers:
            executor.wait_for_workers(n_workers, timeout=startup_timeout)
        yield fleet
    finally:
        executor.close()  # sends shutdown: workers drain and exit
        for process in processes:
            if process.poll() is None:
                try:
                    process.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait(timeout=5.0)


__all__ = ["Fleet", "local_fleet"]

"""Consistent-hash ring sharding the world cache across a worker fleet.

Two pieces:

* :class:`HashRing` — the textbook consistent-hash ring (virtual nodes,
  stable :func:`repro.digest.stable_digest` points, clockwise ownership)
  mapping 128-bit key digests onto fleet members.  A worker joining or
  leaving remaps only the keys adjacent to its points — on average
  ``1/n`` of the space — instead of reshuffling everything, which is the
  whole reason warm worlds survive fleet churn.
* :class:`RingWorldCache` — a drop-in :class:`~repro.service.WorldCache`
  (every ``resolve_cache``/``Session``/``BatchEvaluator`` site accepts
  it unchanged) whose entries live *on the workers*: ``put`` encodes the
  batch through the wire codec and ships it to the key's ring owner,
  ``get`` fetches and decodes it back bit-for-bit.  The inherited local
  LRU serves as the degraded mode — with no workers connected the cache
  still works, just fleet-privately.

The cache is an optimisation layer and fails soft by design: an RPC
timeout, a dead owner or an unencodable batch degrades to a miss (or a
local store), never an error — a re-sample costs time, not correctness,
because the key pins ``(graph, edges, source, backend, seed, n_samples,
shard_size)`` and re-sampling under that key reproduces the same bits.

``invalidate_graph`` keeps its safety contract across the fleet: the
local drop (and graph-layout invalidation) happens synchronously, and a
``cache_invalidate`` fan-out reclaims the remote shards.  The returned
count covers local entries only — remote drops happen asynchronously on
the workers.
"""

from __future__ import annotations

import bisect
import logging
from typing import Dict, List, Optional, Union

from repro.digest import graph_digest, stable_digest
from repro.exceptions import WireFormatError
from repro.reachability.engine import WorldBatch
from repro.service.cache import WorldCache, WorldKey
from repro.telemetry import current_telemetry
from repro.distributed import wire

logger = logging.getLogger(__name__)

#: The digest space the ring covers (stable_digest is 128-bit).
RING_SPACE = 1 << 128


class HashRing:
    """Consistent hashing with virtual nodes over the 128-bit digest space.

    ``replicas`` virtual points per node smooth the ownership
    distribution (the classic variance fix); ownership of a key digest
    is the first point clockwise from it.  Not thread-safe on its own —
    the :class:`~repro.distributed.RemoteExecutor` guards it with its
    fleet lock.
    """

    def __init__(self, replicas: int = 64) -> None:
        if replicas <= 0:
            raise ValueError(f"replicas must be positive, got {replicas!r}")
        self.replicas = int(replicas)
        self._nodes: Dict[object, object] = {}
        self._points: List[int] = []
        self._owners: List[object] = []

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: object) -> bool:
        return node_id in self._nodes

    def add(self, node_id: object, node: object) -> None:
        """Register ``node`` under ``node_id`` (idempotent)."""
        if node_id in self._nodes:
            self._nodes[node_id] = node
            return
        self._nodes[node_id] = node
        for replica in range(self.replicas):
            point = stable_digest(("ring-point", node_id, replica))
            index = bisect.bisect_left(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node_id)

    def remove(self, node_id: object) -> None:
        """Forget ``node_id``; only its own points leave the ring."""
        if self._nodes.pop(node_id, None) is None:
            return
        keep = [i for i, owner in enumerate(self._owners) if owner != node_id]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    def node_for(self, digest: int) -> Optional[object]:
        """The node owning ``digest`` (``None`` on an empty ring)."""
        if not self._points:
            return None
        index = bisect.bisect_right(self._points, int(digest) % RING_SPACE)
        if index == len(self._points):
            index = 0  # wrap: the smallest point owns the top arc
        return self._nodes[self._owners[index]]

    def nodes(self) -> List[object]:
        return list(self._nodes.values())


class RingWorldCache(WorldCache):
    """A :class:`WorldCache` whose entries shard over a worker fleet.

    Parameters
    ----------
    executor:
        The :class:`~repro.distributed.RemoteExecutor` whose fleet backs
        the ring (membership tracks worker joins/deaths automatically).
    max_entries:
        Bound of the *local fallback* LRU used while no workers are
        connected; remote shards are bounded worker-side.
    """

    _metric_prefix = "cache.ring"

    def __init__(self, executor, max_entries: Optional[int] = 64) -> None:
        super().__init__(max_entries=max_entries)
        self._executor = executor

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<RingWorldCache executor={self._executor!r} "
            f"hits={self.hits} misses={self.misses}>"
        )

    # ------------------------------------------------------------------
    def get(self, key: WorldKey) -> Optional[WorldBatch]:
        payload = self._executor.cache_fetch(key.digest)
        if payload is not None:
            try:
                batch = wire.decode_world_batch(payload)
            except WireFormatError as error:
                logger.warning("dropping undecodable ring entry: %s", error)
            else:
                with self._lock:
                    self.hits += 1
                tel = current_telemetry()
                if tel.enabled:
                    tel.count(f"{self._metric_prefix}.hits")
                return batch
        # miss (or no ring / degraded fetch): the inherited local LRU is
        # the second chance, and it does the miss accounting
        return super().get(key)

    def put(self, key: WorldKey, batch: WorldBatch) -> None:
        try:
            entry = wire.encode_world_batch(batch)
        except WireFormatError as error:
            # unencodable batches (exotic vertex ids) stay fleet-private
            logger.warning("world batch not wire-encodable, caching locally: %s", error)
            super().put(key, batch)
            return
        if self._executor.cache_store(key.digest, key.graph_digest, entry):
            tel = current_telemetry()
            if tel.enabled:
                tel.count(f"{self._metric_prefix}.puts")
            return
        super().put(key, batch)  # empty ring: keep it locally

    # ------------------------------------------------------------------
    def invalidate_graph(self, graph_or_digest: Union[int, object]) -> int:
        digest = (
            graph_or_digest
            if isinstance(graph_or_digest, int)
            else graph_digest(graph_or_digest)
        )
        dropped = super().invalidate_graph(digest)
        self._executor.cache_invalidate_all(digest)
        return dropped

    def clear(self) -> None:
        super().clear()
        self._executor.cache_clear_all()


__all__ = ["HashRing", "RING_SPACE", "RingWorldCache"]

"""The sampling worker agent: connect, register, evaluate, stream back.

A worker is a plain blocking process with one upstream
:class:`~repro.distributed.wire.LineChannel` to its coordinator.  It
registers (protocol version + the backend registry it can serve), then
loops: decode a message, act, answer.  Shard evaluation goes through the
exact :func:`repro.parallel.run_shard` every local executor dispatches,
so a worker cannot produce different bits than an in-process run — the
wire codec round-trips problems, seeds and result arrays exactly.

Besides shard tasks the worker holds its slice of the fleet's world
cache: ``cache_put``/``cache_get``/``cache_invalidate`` store and serve
*encoded* batch payloads (the worker never decodes them — it is a dumb
shard of the ring, the coordinator-side :class:`RingWorldCache` owns the
semantics).

Run one with::

    python -m repro.distributed.worker --connect HOST:PORT

or ``repro-flow worker --connect HOST:PORT``.
"""

from __future__ import annotations

import argparse
import logging
import os
import socket
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ReproError, TransportTimeoutError, WireFormatError
from repro.parallel.executor import run_shard
from repro.reachability.backends import backend_names
from repro.distributed import wire

logger = logging.getLogger(__name__)

#: Decoded problems kept per connection (a coordinator pushes each
#: problem once; the bound only matters for very long-lived workers).
PROBLEM_CACHE_SIZE = 128


class WorkerAgent:
    """One worker process's state machine (single-threaded, blocking).

    Parameters
    ----------
    host, port:
        The coordinator endpoint to register with.
    name:
        Worker name reported on registration (defaults to ``host:pid``).
    connect_timeout:
        Deadline for the TCP connect + registration handshake.
    shard_delay:
        Extra seconds slept before each shard evaluation — a pacing hook
        for fault-injection tests (lets a test SIGKILL the worker while a
        shard is reliably in flight).  Also read from the
        ``REPRO_WORKER_SHARD_DELAY_MS`` environment variable.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        name: Optional[str] = None,
        connect_timeout: float = 10.0,
        shard_delay: float = 0.0,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.name = name or f"{socket.gethostname()}:{os.getpid()}"
        self.connect_timeout = float(connect_timeout)
        self.shard_delay = float(shard_delay)
        self.worker_index: Optional[int] = None
        self.shards_run = 0
        self._channel: Optional[wire.LineChannel] = None
        self._problems: "OrderedDict[int, object]" = OrderedDict()
        self._backends: Dict[str, object] = {}
        # ring shard of the fleet world cache: key digest -> (graph
        # digest, encoded entry payload); payloads stay encoded — only
        # the coordinator ever interprets them
        self._cache: "OrderedDict[int, Tuple[int, Dict[str, object]]]" = OrderedDict()
        self._cache_by_graph: Dict[int, set] = {}
        self._cache_limit = 1024

    # lifecycle --------------------------------------------------------
    def run(self) -> int:
        """Register and serve until shutdown/EOF; returns an exit code."""
        try:
            channel = wire.LineChannel.connect(
                self.host, self.port, timeout=self.connect_timeout
            )
        except (OSError, TransportTimeoutError) as error:
            logger.error(
                "cannot reach coordinator at %s:%d: %s", self.host, self.port, error
            )
            return 1
        self._channel = channel
        try:
            channel.send(
                wire.register_message(self.name, os.getpid(), list(backend_names()))
            )
            ack = channel.recv(timeout=self.connect_timeout)
            if ack is None or ack.get("kind") != wire.MSG_REGISTERED or not ack.get("ok"):
                logger.error("registration rejected by %s: %r", channel.peer, ack)
                return 1
            self.worker_index = int(ack.get("worker_index", -1))
            logger.info(
                "worker %s registered as #%d with %s",
                self.name,
                self.worker_index,
                channel.peer,
            )
            self._serve(channel)
            return 0
        except TransportTimeoutError as error:
            logger.error("registration with %s timed out: %s", channel.peer, error)
            return 1
        except OSError:
            # the coordinator went away mid-send; a worker restart (or
            # supervisor) re-registers — exiting cleanly is the contract
            logger.info("coordinator connection lost; exiting")
            return 0
        finally:
            channel.close()
            self._channel = None

    def stop(self) -> None:
        """Unblock :meth:`run` from another thread / signal handler."""
        channel = self._channel
        if channel is not None:
            channel.close()

    # the dispatch loop ------------------------------------------------
    def _serve(self, channel: wire.LineChannel) -> None:
        while True:
            try:
                message = channel.recv()
            except ValueError as error:
                channel.send(wire.error_message(wire.ERR_BAD_MESSAGE, str(error)))
                continue
            if message is None or message.get("kind") == wire.MSG_SHUTDOWN:
                logger.info(
                    "worker %s draining after %d shard(s)", self.name, self.shards_run
                )
                return
            self._dispatch(channel, message)

    def _dispatch(self, channel: wire.LineChannel, message: Dict[str, object]) -> None:
        kind = message.get("kind")
        if kind == wire.MSG_TASK:
            self._handle_task(channel, message)
        elif kind == wire.MSG_PROBLEM:
            self._handle_problem(channel, message)
        elif kind == wire.MSG_PING:
            channel.send({"kind": wire.MSG_PONG, "id": message.get("id")})
        elif kind == wire.MSG_CACHE_PUT:
            self._cache_put(message)
        elif kind == wire.MSG_CACHE_GET:
            entry = self._cache_get(message)
            channel.send(
                {"kind": wire.MSG_CACHE_ENTRY, "id": message.get("id"), "entry": entry}
            )
        elif kind == wire.MSG_CACHE_INVALIDATE:
            self._cache_invalidate(message)
        elif kind == wire.MSG_CACHE_CLEAR:
            self._cache.clear()
            self._cache_by_graph.clear()
        else:
            channel.send(
                wire.error_message(
                    wire.ERR_BAD_MESSAGE, f"unknown message kind {kind!r}"
                )
            )

    def _handle_problem(self, channel: wire.LineChannel, message: Dict[str, object]) -> None:
        try:
            digest = int(message["digest"])
            problem = wire.decode_problem(message["problem"])
        except (KeyError, TypeError, ValueError, WireFormatError) as error:
            channel.send(
                wire.error_message(wire.ERR_BAD_MESSAGE, f"bad problem push: {error}")
            )
            return
        self._problems[digest] = problem
        self._problems.move_to_end(digest)
        while len(self._problems) > PROBLEM_CACHE_SIZE:
            self._problems.popitem(last=False)

    def _handle_task(self, channel: wire.LineChannel, message: Dict[str, object]) -> None:
        task_id = message.get("id")
        try:
            task_id, task = wire.decode_task(message, self._problems, self._backends)
        except WireFormatError as error:
            text = str(error)
            error_type = wire.ERR_BAD_MESSAGE
            for tag in (wire.ERR_UNKNOWN_PROBLEM, wire.ERR_UNKNOWN_BACKEND):
                if text.startswith(tag):
                    error_type, text = tag, text[len(tag) + 2 :]
                    break
            channel.send(
                wire.error_message(
                    error_type, text, task_id if isinstance(task_id, int) else None
                )
            )
            return
        if self.shard_delay > 0:
            time.sleep(self.shard_delay)
        started = time.perf_counter()
        try:
            result = run_shard(task)
        except (ReproError, ValueError, TypeError, MemoryError) as error:
            channel.send(
                wire.error_message(
                    wire.ERR_EVALUATION, f"{type(error).__name__}: {error}", task_id
                )
            )
            return
        self.shards_run += 1
        channel.send(
            wire.result_message(task_id, result, time.perf_counter() - started)
        )

    # cache shard ------------------------------------------------------
    def _cache_put(self, message: Dict[str, object]) -> None:
        try:
            key = int(message["key"])
            graph = int(message["graph"])
            entry = message["entry"]
        except (KeyError, TypeError, ValueError):
            return
        if not isinstance(entry, dict):
            return
        if key in self._cache:
            self._cache.move_to_end(key)
        self._cache[key] = (graph, entry)
        self._cache_by_graph.setdefault(graph, set()).add(key)
        while len(self._cache) > self._cache_limit:
            old_key, (old_graph, _) = self._cache.popitem(last=False)
            members = self._cache_by_graph.get(old_graph)
            if members is not None:
                members.discard(old_key)
                if not members:
                    del self._cache_by_graph[old_graph]

    def _cache_get(self, message: Dict[str, object]) -> Optional[Dict[str, object]]:
        try:
            key = int(message["key"])
        except (KeyError, TypeError, ValueError):
            return None
        hit = self._cache.get(key)
        if hit is None:
            return None
        self._cache.move_to_end(key)
        return hit[1]

    def _cache_invalidate(self, message: Dict[str, object]) -> None:
        try:
            graph = int(message["graph"])
        except (KeyError, TypeError, ValueError):
            return
        for key in self._cache_by_graph.pop(graph, ()):
            self._cache.pop(key, None)


def _parse_connect(spec: str) -> Tuple[str, int]:
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise argparse.ArgumentTypeError(
            f"--connect expects HOST:PORT, got {spec!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--connect expects a numeric port, got {spec!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Sampling worker agent for a repro.distributed coordinator.",
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        type=_parse_connect,
        help="coordinator endpoint to register with",
    )
    parser.add_argument(
        "--name", default=None, help="worker name reported to the coordinator"
    )
    parser.add_argument(
        "--connect-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="TCP connect + registration deadline (default: 10)",
    )
    parser.add_argument(
        "--shard-delay-ms",
        type=float,
        default=None,
        metavar="MS",
        help="sleep this long before evaluating each shard (fault-injection "
        "pacing hook; also via REPRO_WORKER_SHARD_DELAY_MS)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.distributed.worker``."""
    logging.basicConfig(level=logging.INFO, format="%(levelname)s %(name)s: %(message)s")
    args = build_parser().parse_args(argv)
    delay_ms = args.shard_delay_ms
    if delay_ms is None:
        delay_ms = float(os.environ.get("REPRO_WORKER_SHARD_DELAY_MS", "0") or 0)
    host, port = args.connect
    agent = WorkerAgent(
        host,
        port,
        name=args.name,
        connect_timeout=args.connect_timeout,
        shard_delay=delay_ms / 1000.0,
    )
    try:
        return agent.run()
    except KeyboardInterrupt:
        return 0


__all__ = ["PROBLEM_CACHE_SIZE", "WorkerAgent", "build_parser", "main"]

if __name__ == "__main__":
    raise SystemExit(main())

"""The NP-hardness reduction of Theorem 1 (0-1 knapsack → MaxFlow).

The paper proves that selecting the optimal ``k`` edges is NP-hard even
if expected flows were free to evaluate, by encoding a 0-1 knapsack
instance as a MaxFlow instance: item ``i`` (weight ``w_i``, value
``v_i``) becomes a chain of ``w_i`` certain edges hanging off the query
vertex whose *last* vertex carries the item's value; with budget
``k = W`` the optimal edge selection picks exactly the chains of an
optimal knapsack packing.

This module makes the reduction executable: it builds the gadget graph,
maps edge selections back to item selections, and (for small instances)
demonstrates that solving MaxFlow optimally solves the knapsack — which
the test suite verifies against a dynamic-programming knapsack solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.graph.uncertain_graph import UncertainGraph
from repro.types import Edge, VertexId

#: The query vertex of every reduction graph.
REDUCTION_QUERY = "Q"


@dataclass(frozen=True)
class KnapsackItem:
    """One 0-1 knapsack item."""

    name: str
    weight: int
    value: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"item weight must be a positive integer, got {self.weight!r}")
        if self.value < 0:
            raise ValueError(f"item value must be non-negative, got {self.value!r}")


@dataclass(frozen=True)
class KnapsackInstance:
    """A 0-1 knapsack instance: items plus a capacity."""

    items: Tuple[KnapsackItem, ...]
    capacity: int

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {self.capacity!r}")

    @classmethod
    def from_tuples(
        cls, items: Iterable[Tuple[str, int, float]], capacity: int
    ) -> "KnapsackInstance":
        """Build an instance from ``(name, weight, value)`` tuples."""
        return cls(tuple(KnapsackItem(name, weight, value) for name, weight, value in items), capacity)


def knapsack_to_maxflow(instance: KnapsackInstance) -> Tuple[UncertainGraph, int]:
    """Build the Theorem-1 gadget graph and edge budget for a knapsack instance.

    Returns the uncertain graph (all edge probabilities are 1, so the
    flow is deterministic) and the edge budget ``k = capacity``.  The
    chain of item ``i`` consists of vertices ``item_i/1 … item_i/w_i``;
    only the last vertex carries weight ``v_i``, every other vertex has
    weight zero.
    """
    graph = UncertainGraph(name="knapsack-reduction")
    graph.add_vertex(REDUCTION_QUERY, weight=0.0)
    for item in instance.items:
        previous: VertexId = REDUCTION_QUERY
        for position in range(1, item.weight + 1):
            vertex = f"{item.name}/{position}"
            is_last = position == item.weight
            graph.add_vertex(vertex, weight=item.value if is_last else 0.0)
            graph.add_edge(previous, vertex, 1.0)
            previous = vertex
    return graph, instance.capacity


def selection_to_items(
    instance: KnapsackInstance, selected_edges: Iterable[Edge]
) -> List[KnapsackItem]:
    """Map a MaxFlow edge selection back to the knapsack items it packs.

    An item counts as packed exactly when its *terminal* chain vertex is
    connected to the query vertex through the selected edges (the
    paper's decoding rule).
    """
    graph, _ = knapsack_to_maxflow(instance)
    selected: Set[Edge] = set(selected_edges)
    adjacency: Dict[VertexId, List[VertexId]] = {}
    for edge in selected:
        adjacency.setdefault(edge.u, []).append(edge.v)
        adjacency.setdefault(edge.v, []).append(edge.u)
    reachable = {REDUCTION_QUERY}
    stack = [REDUCTION_QUERY]
    while stack:
        current = stack.pop()
        for neighbor in adjacency.get(current, ()):
            if neighbor not in reachable:
                reachable.add(neighbor)
                stack.append(neighbor)
    packed = []
    for item in instance.items:
        terminal = f"{item.name}/{item.weight}"
        if terminal in reachable:
            packed.append(item)
    return packed


def solve_knapsack_via_maxflow(instance: KnapsackInstance) -> Tuple[List[KnapsackItem], float]:
    """Solve a (small) knapsack instance through the MaxFlow reduction.

    Uses the exhaustive optimal edge selection, so the instance must stay
    tiny (total weight ≲ 15); the test suite checks the result against
    the dynamic-programming solution below.
    """
    from repro.selection.exact_optimal import exhaustive_optimal_selection

    graph, budget = knapsack_to_maxflow(instance)
    result = exhaustive_optimal_selection(graph, REDUCTION_QUERY, budget)
    packed = selection_to_items(instance, result.selected_edges)
    return packed, sum(item.value for item in packed)


def solve_knapsack_dynamic_programming(instance: KnapsackInstance) -> Tuple[List[KnapsackItem], float]:
    """Classic O(n · W) dynamic program, used as the reference solver."""
    capacity = instance.capacity
    items = instance.items
    best_value = [[0.0] * (capacity + 1) for _ in range(len(items) + 1)]
    for index, item in enumerate(items, start=1):
        for remaining in range(capacity + 1):
            best_value[index][remaining] = best_value[index - 1][remaining]
            if item.weight <= remaining:
                candidate = best_value[index - 1][remaining - item.weight] + item.value
                if candidate > best_value[index][remaining]:
                    best_value[index][remaining] = candidate
    # backtrack
    packed: List[KnapsackItem] = []
    remaining = capacity
    for index in range(len(items), 0, -1):
        if best_value[index][remaining] != best_value[index - 1][remaining]:
            item = items[index - 1]
            packed.append(item)
            remaining -= item.weight
    packed.reverse()
    return packed, best_value[len(items)][capacity]

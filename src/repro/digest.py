"""Stable content digests shared across the caching layers.

Several subsystems need to answer the same question: *"is this the same
content I have already paid to evaluate?"* — the F-tree memo caches
per-component reachability by component content, the CRN component
sampler keys counter-based random streams on that same content, and the
batched query service (:mod:`repro.service`) caches whole sampled world
batches by graph content.  This module is the one hashing scheme behind
all of them.

Digests are 128-bit integers computed with BLAKE2b over a canonical
``repr`` payload, so they are:

* **stable across processes** — no ``PYTHONHASHSEED`` dependence, safe
  to use as cache keys that outlive one interpreter or as seeds of
  counter-based random streams;
* **content-addressed** — two graphs with the same vertices, weights,
  edges and probabilities share a digest regardless of identity, and
  any mutation (edge added/removed, probability or weight changed)
  moves the digest.

Order sensitivity is deliberate and documented per function:
:func:`edge_sequence_digest` preserves order because the possible-world
random stream consumes edge flips in edge order — two requests with the
same edge *set* but different order sample different worlds and must not
share a cache entry.  :func:`content_digest` (the F-tree memo key)
canonicalises order because a bi-connected component's content is a set.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Optional

from repro.types import Edge, VertexId

#: Number of digest bytes (128 bits, matching the historical memo digest).
DIGEST_BYTES = 16


def stable_digest(payload: object) -> int:
    """Return a stable 128-bit integer digest of an arbitrary payload.

    The payload is canonicalised through ``repr`` — callers are expected
    to pass plain tuples/strings/numbers whose ``repr`` is deterministic
    (never objects with identity-based reprs).
    """
    encoded = repr(payload).encode("utf-8")
    return int.from_bytes(
        hashlib.blake2b(encoded, digest_size=DIGEST_BYTES).digest(), "little"
    )


def combine_digests(*parts: object) -> int:
    """Fold several digest components (ints, strings, tuples) into one digest."""
    return stable_digest(tuple(parts))


def content_digest(edges: Iterable[Edge], articulation: VertexId, *salts: int) -> int:
    """Return a stable digest of a bi-connected component's *content*.

    The component content is its edge **set** plus its articulation
    vertex — edge order is canonicalised away, because probing the same
    component while scanning different candidate edges must replay the
    same digest (the F-tree memo and the CRN component streams both rely
    on this, see :mod:`repro.ftree.memo`).  The optional integer
    ``salts`` fold extra context — a round index, a base seed, a sample
    size — into the digest so derived random streams differ where they
    must.
    """
    canonical = sorted((repr(edge.u), repr(edge.v)) for edge in edges)
    payload = repr((canonical, repr(articulation), tuple(int(s) for s in salts)))
    return int.from_bytes(
        hashlib.blake2b(payload.encode("utf-8"), digest_size=DIGEST_BYTES).digest(),
        "little",
    )


def edge_sequence_digest(edges: Optional[Iterable[Edge]]) -> Optional[int]:
    """Return an **order-sensitive** digest of an edge sequence.

    ``None`` (no restriction — the whole graph) maps to ``None`` so the
    caller can distinguish "full graph" from "empty restriction".  Order
    matters: the sampling stream flips edges in sequence order, so the
    same edge set in a different order draws different possible worlds.
    """
    if edges is None:
        return None
    return stable_digest(tuple((repr(edge.u), repr(edge.v)) for edge in edges))


def graph_digest(graph) -> int:
    """Return a stable digest of an uncertain graph's full content.

    Covers, in a canonical form:

    * the vertex set with its information weights (sorted by ``repr`` so
      insertion order does not matter — weights affect flow aggregation,
      not sampling, but a weight change must still move the digest so
      content-addressed caches never serve stale flow numbers);
    * the edge sequence with its probabilities **in insertion order**,
      because unrestricted sampling flips edges in exactly that order.

    The graph's display ``name`` is deliberately excluded: renaming a
    graph does not change any answer.
    """
    vertex_payload = sorted(
        (repr(vertex), float(weight)) for vertex, weight in graph.weights().items()
    )
    edge_payload = tuple(
        (repr(edge.u), repr(edge.v), float(probability))
        for edge, probability in graph.probabilities().items()
    )
    return stable_digest(("graph", tuple(vertex_payload), edge_payload))


def query_digest(kind: str, source: VertexId, *parts: object) -> int:
    """Return a stable digest identifying one query shape.

    Used by the service layer to tag results and deduplicate identical
    requests: ``kind`` is the query kind, ``source`` the vertex the
    query is anchored at, and ``parts`` any further kind-specific
    context (target vertex, edge-restriction digest, sample count, …).
    """
    return stable_digest(("query", kind, repr(source), tuple(repr(p) for p in parts)))


__all__ = [
    "DIGEST_BYTES",
    "combine_digests",
    "content_digest",
    "edge_sequence_digest",
    "graph_digest",
    "query_digest",
    "stable_digest",
]

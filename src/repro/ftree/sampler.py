"""Estimation of reachability inside a single bi-connected component.

The F-tree replaces whole-graph sampling by *local* sampling: only the
edges of one bi-connected component are flipped, and reachability is
measured towards the component's articulation vertex (paper Section 5.3,
Example 2).  Components with few uncertain edges are evaluated exactly by
possible-world enumeration — an extension over the paper that removes
sampling noise from small cycles and keeps unit tests deterministic.

Results are optionally memoized in a :class:`~repro.ftree.memo.MemoCache`
keyed by the component content (Section 6.2).

Two sampling modes govern where the Monte-Carlo randomness comes from:

* ``crn=False`` (resample, the reference mode): every estimation draws
  the next worlds from one sequential stream, so the same component
  probed for two different candidates sees *different* worlds — the
  paper's literal behaviour, pinned by the RNG-contract tests.
* ``crn=True`` (common random numbers): each estimation derives its
  stream from a counter-based generator keyed on ``(base seed, round,
  sample size, component content)`` via
  :func:`~repro.ftree.memo.content_digest`.  Within a selection round
  (see :meth:`ComponentSampler.begin_round`) every probe of the same
  component content draws the same worlds, so candidate comparisons are
  free of cross-candidate sampling noise and estimates are independent
  of probe order — with or without memoization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set

import numpy as np

from repro.exceptions import SampleSizeError
from repro.ftree.memo import MemoCache, MemoEntry, content_digest
from repro.graph.possible_world import enumerate_worlds
from repro.graph.uncertain_graph import UncertainGraph
from repro.parallel.executor import ExecutorLike
from repro.reachability.backends import BackendLike
from repro.reachability.engine import SamplingEngine
from repro.rng import SeedLike, ensure_rng
from repro.types import Edge, VertexId


@dataclass(frozen=True)
class ComponentEstimate:
    """Reachability of a component's vertices towards its articulation vertex."""

    probabilities: Dict[VertexId, float]
    n_samples: Optional[int]
    exact: bool
    from_cache: bool = False


class ComponentSampler:
    """Estimates per-component reachability, with memoization and exact fallback.

    Parameters
    ----------
    n_samples:
        Monte-Carlo sample size for components that are too large for
        exact enumeration (paper default: 1000).
    exact_threshold:
        Components with at most this many uncertain edges are evaluated
        exactly by enumerating their possible worlds (``0`` disables the
        exact path entirely).
    seed:
        Seed or generator for the Monte-Carlo path.
    memo:
        Optional :class:`MemoCache`; when provided, identical component
        contents are only estimated once (the FT+M heuristic).
    backend:
        Possible-world sampling backend name or instance for the
        Monte-Carlo path (see :mod:`repro.reachability.backends`).
    crn:
        Common-random-numbers mode (see the module docstring).  Off by
        default so directly constructed samplers keep the sequential
        reference stream; the greedy selectors enable it per default.
    executor:
        Sharded-sampling executor or worker count (see
        :mod:`repro.parallel`): the Monte-Carlo stream of every sampled
        component is split into per-shard child streams and fanned out.
        ``None`` keeps the unsharded single-process stream; with an
        executor, estimates are bit-for-bit identical for any worker
        count given ``(seed, n_samples, shard_size)``.
    shard_size:
        Worlds per shard for the executor path.

    ``backend``, ``executor`` and ``shard_size`` left at ``None`` resolve
    from the active :func:`repro.session` (falling back to
    ``repro.runtime.defaults``).  ``crn`` stays an explicit per-sampler
    choice — the harness's evaluation yardstick relies on the sequential
    reference stream regardless of how the enclosing session scores
    selection candidates.
    """

    def __init__(
        self,
        n_samples: int = 1000,
        exact_threshold: int = 10,
        seed: SeedLike = None,
        memo: Optional[MemoCache] = None,
        backend: BackendLike = None,
        crn: bool = False,
        executor: ExecutorLike = None,
        shard_size: Optional[int] = None,
    ) -> None:
        if n_samples <= 0:
            raise SampleSizeError(n_samples)
        if exact_threshold < 0:
            raise ValueError(f"exact_threshold must be >= 0, got {exact_threshold!r}")
        self.n_samples = int(n_samples)
        self.exact_threshold = int(exact_threshold)
        self.memo = memo
        self.crn = bool(crn)
        self._engine = SamplingEngine(backend, executor=executor, shard_size=shard_size)
        self._rng = ensure_rng(seed)
        self._round = 0
        # the CRN base key: reuse an integer seed directly so estimates
        # are reproducible per seed; otherwise draw one key from the
        # provided stream (or OS entropy for seed=None)
        if isinstance(seed, (int, np.integer)) and not isinstance(seed, bool):
            self._crn_base = int(seed)
        else:
            self._crn_base = int(self._rng.integers(0, 2**63 - 1)) if self.crn else 0
        #: number of Monte-Carlo estimations actually performed
        self.sampled_components = 0
        #: number of exact enumerations performed
        self.exact_components = 0
        #: total number of edges flipped across all Monte-Carlo estimations
        self.sampled_edges = 0

    # ------------------------------------------------------------------
    def begin_round(self, round_index: int) -> None:
        """Advance the CRN stream to a new selection round.

        In CRN mode every estimation between two ``begin_round`` calls
        derives its worlds from ``(base seed, round_index, sample size,
        component content)``, so re-probing the same component content
        within one round replays the same worlds while a new round draws
        fresh ones.  A no-op in resample mode.
        """
        self._round = int(round_index)

    def _component_rng(self, edges: Set[Edge], articulation: VertexId) -> np.random.Generator:
        """Counter-based generator keyed on round and component content."""
        key = content_digest(
            edges, articulation, self._crn_base, self._round, self.n_samples
        )
        return np.random.Generator(np.random.Philox(key=key))

    # ------------------------------------------------------------------
    def reachability(
        self,
        graph: UncertainGraph,
        articulation: VertexId,
        vertices: Iterable[VertexId],
        edges: Iterable[Edge],
    ) -> ComponentEstimate:
        """Estimate ``P(v ↔ articulation)`` for every vertex of the component.

        Parameters
        ----------
        graph:
            The underlying uncertain graph (source of edge probabilities).
        articulation:
            The component's articulation vertex.
        vertices:
            The component's owned vertices.
        edges:
            The component's edges (over ``vertices ∪ {articulation}``).
        """
        vertex_set: Set[VertexId] = set(vertices)
        edge_set: Set[Edge] = set(edges)
        key = MemoCache.make_key(edge_set, articulation)
        if self.memo is not None:
            cached = self.memo.get(key)
            if cached is not None:
                return ComponentEstimate(
                    probabilities=dict(cached.probabilities),
                    n_samples=cached.n_samples,
                    exact=cached.exact,
                    from_cache=True,
                )
        estimate = self._estimate(graph, articulation, vertex_set, edge_set)
        if self.memo is not None:
            self.memo.put(
                key,
                MemoEntry(
                    probabilities=dict(estimate.probabilities),
                    n_samples=estimate.n_samples,
                    exact=estimate.exact,
                ),
            )
        return estimate

    def estimation_cost(self, edges: Iterable[Edge], articulation: VertexId) -> int:
        """Return the number of edges that would need sampling for this component.

        Zero when the result is already memoized; used by the
        delayed-sampling heuristic to define the cost of probing an edge.
        """
        edge_set = set(edges)
        if self.memo is not None and MemoCache.make_key(edge_set, articulation) in self.memo:
            return 0
        return len(edge_set)

    # ------------------------------------------------------------------
    def _estimate(
        self,
        graph: UncertainGraph,
        articulation: VertexId,
        vertices: Set[VertexId],
        edges: Set[Edge],
    ) -> ComponentEstimate:
        uncertain_edges = sum(1 for edge in edges if graph.probability(edge) < 1.0)
        if uncertain_edges <= self.exact_threshold:
            probabilities = self._exact(graph, articulation, vertices, edges)
            self.exact_components += 1
            return ComponentEstimate(probabilities=probabilities, n_samples=None, exact=True)
        seed = self._component_rng(edges, articulation) if self.crn else self._rng
        probabilities = self._engine.component_reachability(
            graph,
            articulation,
            vertices,
            edges,
            n_samples=self.n_samples,
            seed=seed,
        )
        self.sampled_components += 1
        self.sampled_edges += len(edges)
        return ComponentEstimate(
            probabilities=probabilities, n_samples=self.n_samples, exact=False
        )

    def _exact(
        self,
        graph: UncertainGraph,
        articulation: VertexId,
        vertices: Set[VertexId],
        edges: Set[Edge],
    ) -> Dict[VertexId, float]:
        component_graph = graph.edge_subgraph(edges, keep_all_vertices=False)
        if not component_graph.has_vertex(articulation):
            # isolated articulation vertex: nothing is reachable
            return {vertex: 0.0 for vertex in vertices}
        probabilities = {vertex: 0.0 for vertex in vertices}
        for world, world_probability in enumerate_worlds(component_graph, limit=max(20, self.exact_threshold)):
            reached = world.reachable_from(articulation)
            for vertex in vertices:
                if vertex in reached:
                    probabilities[vertex] += world_probability
        return {vertex: min(1.0, max(0.0, p)) for vertex, p in probabilities.items()}

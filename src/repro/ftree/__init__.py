"""The F-tree (Flow tree): the paper's core data structure.

The F-tree (Section 5.3, Definition 9) decomposes the subgraph induced by
the currently selected edges into

* **mono-connected components** — tree-shaped pieces whose flow towards
  their articulation vertex is computed analytically (Theorem 2), and
* **bi-connected components** — cyclic pieces whose flow towards their
  articulation vertex is estimated by local Monte-Carlo sampling (or
  exact enumeration when the component is small).

Components form a tree rooted (conceptually) at the query vertex ``Q``:
each component forwards all information it collects through its
articulation vertex into the component that owns that vertex, until the
information reaches ``Q``.

Two construction paths are provided: :class:`FTree.insert_edge`
implements the incremental insertion cases of Section 5.4, and
:func:`~repro.ftree.builder.build_ftree` rebuilds the decomposition from
scratch using biconnected components — both must agree, which the test
suite verifies.
"""

from repro.ftree.components import (
    Component,
    MonoConnectedComponent,
    BiConnectedComponent,
)
from repro.ftree.memo import MemoCache
from repro.ftree.sampler import ComponentSampler
from repro.ftree.ftree import FTree, InsertionResult
from repro.ftree.builder import build_ftree
from repro.ftree.export import ftree_to_dot, ftree_summary, graph_to_dot

__all__ = [
    "Component",
    "MonoConnectedComponent",
    "BiConnectedComponent",
    "MemoCache",
    "ComponentSampler",
    "FTree",
    "InsertionResult",
    "build_ftree",
    "ftree_to_dot",
    "ftree_summary",
    "graph_to_dot",
]

"""F-tree components.

A *component* is a set of owned vertices plus one articulation vertex
through which all information collected by the component flows towards
the query vertex (paper Definition 9).  The articulation vertex is *not*
owned by the component — it is owned by the parent component (or it is
the query vertex itself).

* :class:`MonoConnectedComponent` stores a tree: every owned vertex has a
  unique parent towards the articulation vertex, so reachability towards
  the articulation vertex is an exact product of edge probabilities
  (Lemma 2).
* :class:`BiConnectedComponent` stores an arbitrary (cyclic) edge set;
  reachability towards the articulation vertex is estimated by the
  component sampler and cached until the component changes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.exceptions import FTreeInvariantError
from repro.graph.uncertain_graph import UncertainGraph
from repro.types import Edge, VertexId


class Component:
    """Base class for F-tree components.

    Attributes
    ----------
    component_id:
        Identifier assigned by the owning :class:`~repro.ftree.ftree.FTree`.
    articulation:
        The vertex all information of this component flows through.
        Owned by the parent component (or equal to the query vertex).
    vertices:
        The vertices owned by this component (never contains the
        articulation vertex).
    """

    __slots__ = ("component_id", "articulation", "vertices")

    def __init__(self, component_id: int, articulation: VertexId) -> None:
        self.component_id = component_id
        self.articulation = articulation
        self.vertices: Set[VertexId] = set()

    # -- interface -----------------------------------------------------
    @property
    def is_mono(self) -> bool:
        """True for mono-connected (tree-like) components."""
        raise NotImplementedError

    def edges(self) -> Set[Edge]:
        """Return the edges of the subgraph spanned by this component."""
        raise NotImplementedError

    def local_reachability(self, graph: UncertainGraph, sampler) -> Dict[VertexId, float]:
        """Return ``P(v ↔ articulation)`` within the component for every owned vertex."""
        raise NotImplementedError

    def clone(self, component_id: Optional[int] = None) -> "Component":
        """Return a deep copy (optionally with a new id)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "MC" if self.is_mono else "BC"
        return (
            f"<{kind}#{self.component_id} AV={self.articulation!r} "
            f"V={sorted(map(repr, self.vertices))}>"
        )


class MonoConnectedComponent(Component):
    """A tree-shaped component with analytic flow computation.

    The tree is stored as a ``parent_of`` map: every owned vertex points
    to its unique neighbour on the path towards the articulation vertex.
    The component's edge set is exactly ``{(v, parent_of[v])}``.
    """

    __slots__ = ("parent_of",)

    def __init__(self, component_id: int, articulation: VertexId) -> None:
        super().__init__(component_id, articulation)
        #: owned vertex -> its parent towards the articulation vertex
        self.parent_of: Dict[VertexId, VertexId] = {}

    @property
    def is_mono(self) -> bool:
        return True

    # -- structure -----------------------------------------------------
    def add_vertex(self, vertex: VertexId, parent: VertexId) -> None:
        """Attach a new owned vertex below ``parent``.

        ``parent`` must be an owned vertex or the articulation vertex.
        """
        if vertex in self.vertices:
            raise FTreeInvariantError(
                f"vertex {vertex!r} is already owned by component {self.component_id}"
            )
        if parent != self.articulation and parent not in self.vertices:
            raise FTreeInvariantError(
                f"parent {parent!r} is neither owned by component "
                f"{self.component_id} nor its articulation vertex"
            )
        self.vertices.add(vertex)
        self.parent_of[vertex] = parent

    def remove_vertices(self, vertices: Iterable[VertexId]) -> None:
        """Remove owned vertices (their parent links disappear with them)."""
        for vertex in vertices:
            self.vertices.discard(vertex)
            self.parent_of.pop(vertex, None)

    def edges(self) -> Set[Edge]:
        return {Edge(vertex, parent) for vertex, parent in self.parent_of.items()}

    def path_to_articulation(self, vertex: VertexId) -> List[VertexId]:
        """Return the unique path ``[vertex, ..., articulation]`` within the component."""
        if vertex == self.articulation:
            return [vertex]
        if vertex not in self.vertices:
            raise FTreeInvariantError(
                f"vertex {vertex!r} is not owned by component {self.component_id}"
            )
        path = [vertex]
        seen = {vertex}
        current = vertex
        while current != self.articulation:
            current = self.parent_of[current]
            if current in seen:
                raise FTreeInvariantError(
                    f"cycle detected in mono-connected component {self.component_id}"
                )
            seen.add(current)
            path.append(current)
        return path

    def subtree_vertices(self, root: VertexId) -> Set[VertexId]:
        """Return all owned vertices whose path to the articulation passes through ``root``.

        ``root`` itself is included when it is an owned vertex.
        """
        below: Set[VertexId] = set()
        for vertex in self.vertices:
            current = vertex
            while True:
                if current == root:
                    below.add(vertex)
                    break
                if current == self.articulation:
                    break
                current = self.parent_of[current]
        return below

    # -- flow ----------------------------------------------------------
    def local_reachability(self, graph: UncertainGraph, sampler=None) -> Dict[VertexId, float]:
        """Exact reachability of every owned vertex towards the articulation vertex.

        Computed bottom-up along the parent links as the product of edge
        probabilities (Lemma 2); the optional ``sampler`` argument is
        ignored (mono components never sample).
        """
        reach: Dict[VertexId, float] = {}
        for vertex in self.vertices:
            self._reach_of(vertex, graph, reach)
        return reach

    def _reach_of(
        self, vertex: VertexId, graph: UncertainGraph, reach: Dict[VertexId, float]
    ) -> float:
        # iterative walk up the parent chain, filling the memo on the way back
        chain: List[VertexId] = []
        current = vertex
        while current != self.articulation and current not in reach:
            chain.append(current)
            current = self.parent_of[current]
        probability = 1.0 if current == self.articulation else reach[current]
        for element in reversed(chain):
            probability = probability * graph.probability(element, self.parent_of[element])
            reach[element] = probability
        return reach.get(vertex, probability)

    def clone(self, component_id: Optional[int] = None) -> "MonoConnectedComponent":
        clone = MonoConnectedComponent(
            self.component_id if component_id is None else component_id,
            self.articulation,
        )
        clone.vertices = set(self.vertices)
        clone.parent_of = dict(self.parent_of)
        return clone

    def check_invariants(self) -> None:
        """Raise :class:`FTreeInvariantError` if the component is malformed."""
        if self.articulation in self.vertices:
            raise FTreeInvariantError(
                f"articulation vertex {self.articulation!r} must not be owned "
                f"(component {self.component_id})"
            )
        if set(self.parent_of) != self.vertices:
            raise FTreeInvariantError(
                f"parent map of component {self.component_id} does not cover its vertices"
            )
        for vertex in self.vertices:
            # must terminate at the articulation without revisiting vertices
            self.path_to_articulation(vertex)


class BiConnectedComponent(Component):
    """A cyclic component whose flow is estimated by local sampling.

    The reachability function ``BC.P(v)`` of the paper is cached in
    :attr:`reach` and invalidated whenever the component's edge or vertex
    set changes; the owning F-tree re-estimates it lazily through its
    :class:`~repro.ftree.sampler.ComponentSampler`.
    """

    __slots__ = ("_edges", "reach", "reach_samples", "reach_exact")

    def __init__(self, component_id: int, articulation: VertexId) -> None:
        super().__init__(component_id, articulation)
        self._edges: Set[Edge] = set()
        #: cached reachability towards the articulation vertex, or None when stale
        self.reach: Optional[Dict[VertexId, float]] = None
        #: number of samples behind the cache (None when exact or stale)
        self.reach_samples: Optional[int] = None
        #: True when the cached values come from exact enumeration
        self.reach_exact: bool = False

    @property
    def is_mono(self) -> bool:
        return False

    # -- structure -----------------------------------------------------
    def add_edge(self, edge: Edge) -> None:
        """Add an edge to the component and invalidate the cached reachability."""
        for endpoint in edge:
            if endpoint != self.articulation and endpoint not in self.vertices:
                self.vertices.add(endpoint)
        self._edges.add(edge)
        self.invalidate()

    def absorb(self, vertices: Iterable[VertexId], edges: Iterable[Edge]) -> None:
        """Absorb vertices and edges of another component (Case IVb / splitTree moves)."""
        for vertex in vertices:
            if vertex != self.articulation:
                self.vertices.add(vertex)
        self._edges.update(edges)
        self.invalidate()

    def edges(self) -> Set[Edge]:
        return set(self._edges)

    def invalidate(self) -> None:
        """Mark the cached reachability as stale (forces re-estimation)."""
        self.reach = None
        self.reach_samples = None
        self.reach_exact = False

    def set_reach(
        self,
        reach: Dict[VertexId, float],
        n_samples: Optional[int],
        exact: bool,
    ) -> None:
        """Install an estimated reachability function (called by the F-tree)."""
        self.reach = dict(reach)
        self.reach_samples = n_samples
        self.reach_exact = exact

    @property
    def needs_estimation(self) -> bool:
        """True when the cached reachability is stale or missing."""
        return self.reach is None

    # -- flow ----------------------------------------------------------
    def local_reachability(self, graph: UncertainGraph, sampler) -> Dict[VertexId, float]:
        """Reachability of every owned vertex towards the articulation vertex.

        Uses the cached values when fresh; otherwise asks ``sampler`` to
        (re-)estimate them and caches the result.
        """
        if self.needs_estimation:
            if sampler is None:
                raise FTreeInvariantError(
                    f"bi-connected component {self.component_id} needs sampling "
                    "but no sampler was provided"
                )
            estimate = sampler.reachability(
                graph, self.articulation, self.vertices, self._edges
            )
            self.set_reach(estimate.probabilities, estimate.n_samples, estimate.exact)
        assert self.reach is not None
        return dict(self.reach)

    def clone(self, component_id: Optional[int] = None) -> "BiConnectedComponent":
        clone = BiConnectedComponent(
            self.component_id if component_id is None else component_id,
            self.articulation,
        )
        clone.vertices = set(self.vertices)
        clone._edges = set(self._edges)
        clone.reach = None if self.reach is None else dict(self.reach)
        clone.reach_samples = self.reach_samples
        clone.reach_exact = self.reach_exact
        return clone

    def check_invariants(self) -> None:
        """Raise :class:`FTreeInvariantError` if the component is malformed."""
        if self.articulation in self.vertices:
            raise FTreeInvariantError(
                f"articulation vertex {self.articulation!r} must not be owned "
                f"(component {self.component_id})"
            )
        spanned: Set[VertexId] = set()
        for edge in self._edges:
            spanned.add(edge.u)
            spanned.add(edge.v)
        if spanned - self.vertices - {self.articulation}:
            raise FTreeInvariantError(
                f"component {self.component_id} has edges touching foreign vertices"
            )
        if self.vertices - spanned:
            raise FTreeInvariantError(
                f"component {self.component_id} owns vertices not covered by its edges"
            )
        if self.reach is not None and set(self.reach) != self.vertices:
            raise FTreeInvariantError(
                f"cached reachability of component {self.component_id} "
                "does not match its vertex set"
            )

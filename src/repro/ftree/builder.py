"""Construction of an F-tree from scratch.

The incremental insertion of :class:`~repro.ftree.ftree.FTree` is the
paper's contribution; this module provides the *reference* construction:
given a set of already-selected edges, decompose the query vertex's
connected component into biconnected blocks (cyclic blocks become
bi-connected components, maximal trees of bridges become mono-connected
components) and assemble the same flow tree.  The test suite uses it to
cross-validate the incremental cases, and the selection algorithms can
use it to re-synchronise an F-tree after bulk edge changes.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set

from repro.algorithms.biconnected import block_cut_tree
from repro.exceptions import VertexNotFoundError
from repro.ftree.components import BiConnectedComponent, MonoConnectedComponent
from repro.ftree.ftree import FTree
from repro.ftree.sampler import ComponentSampler
from repro.graph.uncertain_graph import UncertainGraph
from repro.types import Edge, VertexId, as_edges


def build_ftree(
    graph: UncertainGraph,
    selected_edges: Iterable["Edge | tuple"],
    query: VertexId,
    sampler: Optional[ComponentSampler] = None,
) -> FTree:
    """Build an F-tree for ``selected_edges`` without incremental insertion.

    Edges not connected to the query vertex are ignored (the F-tree only
    ever represents the query vertex's component), mirroring the
    behaviour of the greedy selectors which always grow a single
    connected component around ``Q``.
    """
    if not graph.has_vertex(query):
        raise VertexNotFoundError(query)
    edges = as_edges(selected_edges)
    ftree = FTree(graph, query, sampler=sampler)
    if not edges:
        return ftree

    distance = _bfs_distances(graph, query, edges)
    kept = [edge for edge in edges if edge.u in distance and edge.v in distance]
    ftree._selected = set(kept)
    if not kept:
        return ftree

    tree = block_cut_tree(graph, query, edges=kept)
    bridge_edges: Set[Edge] = set()
    for index, block in enumerate(tree.blocks):
        if len(block) == 1:
            bridge_edges |= set(block)
            continue
        articulation = tree.block_parent_vertex[index]
        component = BiConnectedComponent(ftree._new_id(), articulation)
        component.absorb(
            (vertex for vertex in tree.block_vertices[index] if vertex != articulation),
            block,
        )
        ftree._register(component)

    for group in _bridge_forests(bridge_edges):
        anchor = min(group["vertices"], key=lambda vertex: distance[vertex])
        component = MonoConnectedComponent(ftree._new_id(), anchor)
        parent_of = _orient_tree(group["adjacency"], anchor)
        component.vertices = set(parent_of)
        component.parent_of = parent_of
        ftree._register(component)
        if anchor == query and ftree._root_mono_id is None:
            ftree._root_mono_id = component.component_id
    return ftree


def _bfs_distances(
    graph: UncertainGraph, source: VertexId, edges: Iterable[Edge]
) -> Dict[VertexId, int]:
    """Hop distances from ``source`` over the selected edges only."""
    adjacency: Dict[VertexId, List[VertexId]] = {}
    for edge in edges:
        adjacency.setdefault(edge.u, []).append(edge.v)
        adjacency.setdefault(edge.v, []).append(edge.u)
    distance = {source: 0}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        for neighbor in adjacency.get(current, ()):
            if neighbor not in distance:
                distance[neighbor] = distance[current] + 1
                queue.append(neighbor)
    return distance


def _bridge_forests(bridge_edges: Set[Edge]) -> List[dict]:
    """Group bridge edges into maximal connected trees.

    Returns a list of dictionaries with the tree's ``vertices`` and its
    ``adjacency`` map; each tree becomes one mono-connected component.
    """
    adjacency: Dict[VertexId, Set[VertexId]] = {}
    for edge in bridge_edges:
        adjacency.setdefault(edge.u, set()).add(edge.v)
        adjacency.setdefault(edge.v, set()).add(edge.u)
    groups: List[dict] = []
    seen: Set[VertexId] = set()
    for start in adjacency:
        if start in seen:
            continue
        vertices = {start}
        queue = deque([start])
        seen.add(start)
        while queue:
            current = queue.popleft()
            for neighbor in adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    vertices.add(neighbor)
                    queue.append(neighbor)
        groups.append(
            {
                "vertices": vertices,
                "adjacency": {vertex: set(adjacency[vertex]) & vertices for vertex in vertices},
            }
        )
    return groups


def _orient_tree(
    adjacency: Dict[VertexId, Set[VertexId]], root: VertexId
) -> Dict[VertexId, VertexId]:
    """Return a ``vertex -> parent`` map orienting a tree towards ``root``."""
    parent_of: Dict[VertexId, VertexId] = {}
    seen = {root}
    queue = deque([root])
    while queue:
        current = queue.popleft()
        for neighbor in adjacency.get(current, ()):
            if neighbor not in seen:
                seen.add(neighbor)
                parent_of[neighbor] = current
                queue.append(neighbor)
    return parent_of

"""Memoization cache for bi-connected component reachability functions.

The component-memoization heuristic (paper Section 6.2) avoids
re-sampling a bi-connected component whose content did not change since
it was last estimated.  The cache key is the component's *content* — its
edge set and articulation vertex — rather than the probing candidate
edge, which subsumes the paper's per-candidate memoization and stays
valid when the same component re-appears while probing a different
candidate edge.

:func:`repro.digest.content_digest` (re-exported here for backwards
compatibility) hashes the same content notion into a stable integer.
The CRN mode of :class:`~repro.ftree.sampler.ComponentSampler` keys its
counter-based random streams on that digest, so that within a selection
round every probe of the same component content draws the same possible
worlds — memoization and common random numbers agree on what "the same
component" means.  The hashing scheme itself lives in
:mod:`repro.digest`, shared with the world-batch cache of the batched
query service (:mod:`repro.service`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.digest import content_digest
from repro.types import Edge, VertexId

#: Cache key: (frozenset of component edges, articulation vertex).
MemoKey = Tuple[FrozenSet[Edge], VertexId]

__all__ = ["MemoCache", "MemoEntry", "MemoKey", "content_digest"]


@dataclass(frozen=True)
class MemoEntry:
    """A cached reachability estimate for one component content."""

    probabilities: Dict[VertexId, float]
    n_samples: Optional[int]
    exact: bool


class MemoCache:
    """Bounded LRU cache of component reachability estimates.

    Parameters
    ----------
    max_entries:
        Maximum number of cached components; the least recently used
        entry is evicted beyond that.  ``None`` disables eviction.
    """

    def __init__(self, max_entries: Optional[int] = 10_000) -> None:
        if max_entries is not None and max_entries <= 0:
            raise ValueError(f"max_entries must be positive or None, got {max_entries!r}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[MemoKey, MemoEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def make_key(edges: Iterable[Edge], articulation: VertexId) -> MemoKey:
        """Build the cache key for a component content."""
        return frozenset(edges), articulation

    def get(self, key: MemoKey) -> Optional[MemoEntry]:
        """Return the cached entry for ``key`` (and count a hit/miss)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return entry

    def put(self, key: MemoKey, entry: MemoEntry) -> None:
        """Store ``entry`` under ``key``, evicting the LRU entry if needed."""
        self._entries[key] = entry
        self._entries.move_to_end(key)
        if self.max_entries is not None and len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every cached entry and reset the hit/miss counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: MemoKey) -> bool:
        return key in self._entries

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when no lookups)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Return hit/miss statistics for reporting."""
        return {
            "entries": float(len(self._entries)),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": self.hit_rate,
        }

"""The F-tree: incremental maintenance and expected-flow evaluation.

The F-tree represents the subgraph induced by the edges selected so far
as a tree of components anchored at the query vertex ``Q`` (Definition
9).  :meth:`FTree.insert_edge` implements the incremental insertion cases
of Section 5.4:

* **Case II** — one endpoint is new: the vertex is attached as a dead end
  (to the mono component that owns the anchor, or as a fresh
  single-vertex mono component below a bi component).
* **Case IIIa** — both endpoints live in the same bi-connected component:
  the edge joins that component, whose reachability must be re-estimated.
* **Case IIIb** — both endpoints live in the same mono-connected
  component: a cycle appears; the affected path is split off into a new
  bi-connected component and orphaned subtrees become new mono
  components (``splitTree``).
* **Case IV** — the endpoints live in different components: the new cycle
  spans a whole chain of components up to their lowest common ancestor;
  bi components on the chain are absorbed, mono components contribute
  the path towards their articulation vertex, and the ancestor is
  handled like Case III.

Cases IIIb and IV share one generic cycle-closing routine; the paper's
case labels are preserved in the returned :class:`InsertionResult` for
observability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.exceptions import (
    DisconnectedInsertionError,
    DuplicateEdgeError,
    EdgeNotFoundError,
    FTreeInvariantError,
    VertexNotFoundError,
)
from repro.ftree.components import (
    BiConnectedComponent,
    Component,
    MonoConnectedComponent,
)
from repro.ftree.sampler import ComponentSampler
from repro.reachability.confidence import standard_normal_quantile
from repro.types import Edge, VertexId


@dataclass
class InsertionResult:
    """Describes what one edge insertion did to the F-tree."""

    edge: Edge
    #: Paper case label: "IIa", "IIb", "IIIa", "IIIb" or "IV".
    case: str
    #: Ids of components created by the insertion.
    created_components: List[int] = field(default_factory=list)
    #: Ids of components removed (absorbed or emptied) by the insertion.
    removed_components: List[int] = field(default_factory=list)
    #: Ids of bi components whose reachability must be re-estimated.
    invalidated_components: List[int] = field(default_factory=list)


class FTree:
    """Flow tree over the currently selected edge set of an uncertain graph.

    Parameters
    ----------
    graph:
        The full uncertain graph; supplies edge probabilities and vertex
        weights.  The F-tree itself only tracks the *selected* edges.
    query:
        The query vertex ``Q``; all flow is measured towards it.
    sampler:
        The :class:`ComponentSampler` used to estimate bi-connected
        components (a default sampler is created when omitted).
    """

    def __init__(
        self,
        graph,
        query: VertexId,
        sampler: Optional[ComponentSampler] = None,
    ) -> None:
        if not graph.has_vertex(query):
            raise VertexNotFoundError(query)
        self.graph = graph
        self.query = query
        self.sampler = sampler if sampler is not None else ComponentSampler()
        self._components: Dict[int, Component] = {}
        #: vertex -> id of the component that owns it (Q is never owned)
        self._owner: Dict[VertexId, int] = {}
        self._selected: Set[Edge] = set()
        self._next_id = 0
        self._root_mono_id: Optional[int] = None

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def selected_edges(self) -> Set[Edge]:
        """The set of edges inserted so far."""
        return set(self._selected)

    @property
    def n_selected(self) -> int:
        """Number of selected edges."""
        return len(self._selected)

    def components(self) -> List[Component]:
        """Return all components (arbitrary order)."""
        return list(self._components.values())

    def component(self, component_id: int) -> Component:
        """Return the component with the given id."""
        return self._components[component_id]

    def connected_vertices(self) -> Set[VertexId]:
        """Return all vertices currently connected to the query vertex (including Q)."""
        return set(self._owner) | {self.query}

    def is_connected_vertex(self, vertex: VertexId) -> bool:
        """Return True if ``vertex`` is the query vertex or reachable via selected edges."""
        return vertex == self.query or vertex in self._owner

    def owner_of(self, vertex: VertexId) -> Optional[Component]:
        """Return the component owning ``vertex`` (None for the query vertex)."""
        if vertex == self.query:
            return None
        component_id = self._owner.get(vertex)
        return None if component_id is None else self._components[component_id]

    # ------------------------------------------------------------------
    # bookkeeping helpers
    # ------------------------------------------------------------------
    def _new_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _register(self, component: Component) -> None:
        self._components[component.component_id] = component
        for vertex in component.vertices:
            self._owner[vertex] = component.component_id

    def _unregister(self, component: Component) -> None:
        self._components.pop(component.component_id, None)
        if self._root_mono_id == component.component_id:
            self._root_mono_id = None

    def _root_mono(self) -> MonoConnectedComponent:
        """Return (creating lazily) the mono component anchored directly at Q."""
        if self._root_mono_id is not None:
            component = self._components.get(self._root_mono_id)
            if isinstance(component, MonoConnectedComponent):
                return component
        component = MonoConnectedComponent(self._new_id(), self.query)
        self._components[component.component_id] = component
        self._root_mono_id = component.component_id
        return component

    # ------------------------------------------------------------------
    # edge insertion (Section 5.4)
    # ------------------------------------------------------------------
    def insert_edge(self, u: VertexId, v: VertexId) -> InsertionResult:
        """Insert the selected edge ``(u, v)`` and update the decomposition.

        At least one endpoint must already be connected to the query
        vertex (Case I of the paper never occurs because edge selection
        grows a single connected component around ``Q``).
        """
        edge = Edge(u, v)
        if not self.graph.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        if edge in self._selected:
            raise DuplicateEdgeError(u, v)
        u_connected = self.is_connected_vertex(u)
        v_connected = self.is_connected_vertex(v)
        if not u_connected and not v_connected:
            raise DisconnectedInsertionError(u, v)
        self._selected.add(edge)
        if u_connected and not v_connected:
            return self._attach_new_vertex(u, v, edge)
        if v_connected and not u_connected:
            return self._attach_new_vertex(v, u, edge)
        return self._insert_between_connected(u, v, edge)

    # -- Case II ---------------------------------------------------------
    def _attach_new_vertex(self, anchor: VertexId, new_vertex: VertexId, edge: Edge) -> InsertionResult:
        owner = self.owner_of(anchor)
        if owner is None:
            # the anchor is the query vertex: grow the root mono component
            root = self._root_mono()
            root.add_vertex(new_vertex, anchor)
            self._owner[new_vertex] = root.component_id
            return InsertionResult(edge=edge, case="IIa", created_components=[], removed_components=[])
        if owner.is_mono:
            assert isinstance(owner, MonoConnectedComponent)
            owner.add_vertex(new_vertex, anchor)
            self._owner[new_vertex] = owner.component_id
            return InsertionResult(edge=edge, case="IIa")
        # anchor lives in a bi component: a new dead-end mono component hangs below it
        mono = MonoConnectedComponent(self._new_id(), anchor)
        mono.add_vertex(new_vertex, anchor)
        self._register(mono)
        return InsertionResult(edge=edge, case="IIb", created_components=[mono.component_id])

    # -- Cases III and IV --------------------------------------------------
    def _insert_between_connected(self, u: VertexId, v: VertexId, edge: Edge) -> InsertionResult:
        owner_u = self.owner_of(u)
        owner_v = self.owner_of(v)
        if (
            owner_u is not None
            and owner_v is not None
            and owner_u.component_id == owner_v.component_id
        ):
            if not owner_u.is_mono:
                # Case IIIa: new edge inside an existing bi component
                assert isinstance(owner_u, BiConnectedComponent)
                owner_u.add_edge(edge)
                return InsertionResult(
                    edge=edge,
                    case="IIIa",
                    invalidated_components=[owner_u.component_id],
                )
            return self._close_cycle(u, v, edge, case="IIIb")
        # the paper treats an edge between a bi component and its own articulation
        # vertex as Case IIIa as well: the edge lies entirely inside that component
        for inside, outside in ((owner_u, v), (owner_v, u)):
            if (
                inside is not None
                and not inside.is_mono
                and inside.articulation == outside
            ):
                assert isinstance(inside, BiConnectedComponent)
                inside.add_edge(edge)
                return InsertionResult(
                    edge=edge,
                    case="IIIa",
                    invalidated_components=[inside.component_id],
                )
        return self._close_cycle(u, v, edge, case="IV")

    def _anchor_chain(self, vertex: VertexId) -> List[Tuple[Component, VertexId]]:
        """Return the chain of (component, entry vertex) pairs from ``vertex`` up to Q."""
        chain: List[Tuple[Component, VertexId]] = []
        current = vertex
        guard = 0
        while current != self.query:
            component = self.owner_of(current)
            if component is None:
                raise FTreeInvariantError(
                    f"vertex {current!r} is connected but owned by no component"
                )
            chain.append((component, current))
            current = component.articulation
            guard += 1
            if guard > len(self._components) + 1:
                raise FTreeInvariantError("cycle detected in the component ancestry")
        return chain

    def _close_cycle(self, u: VertexId, v: VertexId, edge: Edge, case: str) -> InsertionResult:
        """Generic cycle-closing routine shared by Case IIIb and Case IV."""
        chain_u = self._anchor_chain(u)
        chain_v = self._anchor_chain(v)
        ids_u = {component.component_id: index for index, (component, _) in enumerate(chain_u)}
        ancestor: Optional[Component] = None
        cut_u, cut_v = len(chain_u), len(chain_v)
        for index_v, (component, _) in enumerate(chain_v):
            if component.component_id in ids_u:
                ancestor = component
                cut_u = ids_u[component.component_id]
                cut_v = index_v
                break
        below_u = chain_u[:cut_u]
        below_v = chain_v[:cut_v]
        entry_u = u if not below_u else below_u[-1][0].articulation
        entry_v = v if not below_v else below_v[-1][0].articulation

        moved_vertices: Set[VertexId] = set()
        moved_edges: Set[Edge] = {edge}
        orphans: List[Tuple[VertexId, Dict[VertexId, VertexId]]] = []
        removed: List[Component] = []

        for component, entry in below_u + below_v:
            self._consume_chain_component(
                component, entry, moved_vertices, moved_edges, orphans, removed
            )

        if ancestor is None:
            articulation: VertexId = self.query
        elif entry_u == entry_v:
            articulation = entry_u
        elif not ancestor.is_mono:
            # the lowest common ancestor is itself cyclic: it merges into the new component
            moved_vertices |= ancestor.vertices
            moved_edges |= ancestor.edges()
            removed.append(ancestor)
            articulation = ancestor.articulation
        else:
            assert isinstance(ancestor, MonoConnectedComponent)
            path_u = ancestor.path_to_articulation(entry_u)
            path_v = ancestor.path_to_articulation(entry_v)
            on_path_u = set(path_u)
            meet = next(vertex for vertex in path_v if vertex in on_path_u)
            moved_in_ancestor: List[VertexId] = []
            for vertex in path_u:
                if vertex == meet:
                    break
                moved_in_ancestor.append(vertex)
            for vertex in path_v:
                if vertex == meet:
                    break
                moved_in_ancestor.append(vertex)
            self._split_mono(
                ancestor, moved_in_ancestor, moved_vertices, moved_edges, orphans, removed
            )
            articulation = meet

        # assemble the new bi-connected component
        new_component = BiConnectedComponent(self._new_id(), articulation)
        new_component.absorb(moved_vertices - {articulation}, moved_edges)

        removed_ids: List[int] = []
        for component in removed:
            self._unregister(component)
            removed_ids.append(component.component_id)
        self._register(new_component)

        created_ids = [new_component.component_id]
        for anchor, parent_map in orphans:
            orphan = MonoConnectedComponent(self._new_id(), anchor)
            orphan.vertices = set(parent_map)
            orphan.parent_of = dict(parent_map)
            self._register(orphan)
            created_ids.append(orphan.component_id)

        return InsertionResult(
            edge=edge,
            case=case,
            created_components=created_ids,
            removed_components=removed_ids,
            invalidated_components=[new_component.component_id],
        )

    def _consume_chain_component(
        self,
        component: Component,
        entry: VertexId,
        moved_vertices: Set[VertexId],
        moved_edges: Set[Edge],
        orphans: List[Tuple[VertexId, Dict[VertexId, VertexId]]],
        removed: List[Component],
    ) -> None:
        """Merge one chain component (strictly below the ancestor) into the new cycle."""
        if component.is_mono:
            assert isinstance(component, MonoConnectedComponent)
            path = component.path_to_articulation(entry)
            moved = path[:-1]  # the articulation vertex belongs to the component above
            self._split_mono(component, moved, moved_vertices, moved_edges, orphans, removed)
        else:
            moved_vertices |= component.vertices
            moved_edges |= component.edges()
            removed.append(component)

    def _split_mono(
        self,
        component: MonoConnectedComponent,
        moved: Sequence[VertexId],
        moved_vertices: Set[VertexId],
        moved_edges: Set[Edge],
        orphans: List[Tuple[VertexId, Dict[VertexId, VertexId]]],
        removed: List[Component],
    ) -> None:
        """Move ``moved`` (a path towards the articulation) out of a mono component.

        Implements the ``splitTree`` operation: the moved vertices and
        their parent edges join the new cycle; remaining vertices whose
        path to the articulation crosses a moved vertex become orphan
        mono components anchored at the first moved vertex on their path;
        all other vertices stay in the (shrunk) original component.
        """
        moved_set = set(moved)
        for vertex in moved:
            moved_vertices.add(vertex)
            moved_edges.add(Edge(vertex, component.parent_of[vertex]))

        remaining = component.vertices - moved_set
        orphan_groups: Dict[VertexId, Set[VertexId]] = {}
        for vertex in remaining:
            current = vertex
            anchor: Optional[VertexId] = None
            while True:
                parent = component.parent_of[current]
                if parent in moved_set:
                    anchor = parent
                    break
                if parent == component.articulation:
                    break
                current = parent
            if anchor is not None:
                orphan_groups.setdefault(anchor, set()).add(vertex)

        orphaned: Set[VertexId] = set()
        for anchor, group in orphan_groups.items():
            parent_map = {vertex: component.parent_of[vertex] for vertex in group}
            orphans.append((anchor, parent_map))
            orphaned |= group

        component.remove_vertices(moved_set | orphaned)
        for vertex in moved_set | orphaned:
            # ownership is reassigned by the caller through _register;
            # drop the stale entry now so emptied components disappear cleanly
            self._owner.pop(vertex, None)
        if not component.vertices:
            self._unregister(component)
            removed.append(component)

    # ------------------------------------------------------------------
    # flow evaluation (Section 5.3)
    # ------------------------------------------------------------------
    def _topological_components(self) -> List[Component]:
        """Return components ordered so that parents precede children."""
        depth: Dict[int, int] = {}

        def component_depth(component: Component) -> int:
            cached = depth.get(component.component_id)
            if cached is not None:
                return cached
            seen: List[Component] = []
            current = component
            while True:
                if current.component_id in depth:
                    base = depth[current.component_id]
                    break
                seen.append(current)
                if current.articulation == self.query:
                    base = -1
                    break
                parent = self.owner_of(current.articulation)
                if parent is None:
                    raise FTreeInvariantError(
                        f"articulation vertex {current.articulation!r} of component "
                        f"{current.component_id} is owned by no component"
                    )
                if any(parent.component_id == c.component_id for c in seen):
                    raise FTreeInvariantError("component ancestry contains a cycle")
                current = parent
            for offset, visited in enumerate(reversed(seen), start=1):
                depth[visited.component_id] = base + offset
            return depth[component.component_id]

        ordered = sorted(self._components.values(), key=component_depth)
        return ordered

    def reachability_to_query(self) -> Dict[VertexId, float]:
        """Return the estimated probability of reaching Q for every connected vertex.

        The query vertex maps to 1.0.  Probabilities multiply along the
        component tree: a vertex's local reachability towards its
        component's articulation vertex times that articulation vertex's
        own reachability towards Q (independent components, Theorem 2).
        """
        reach: Dict[VertexId, float] = {self.query: 1.0}
        for component in self._topological_components():
            anchor_probability = reach.get(component.articulation)
            if anchor_probability is None:
                raise FTreeInvariantError(
                    f"anchor {component.articulation!r} of component "
                    f"{component.component_id} evaluated before its parent"
                )
            local = component.local_reachability(self.graph, self.sampler)
            for vertex, probability in local.items():
                reach[vertex] = probability * anchor_probability
        return reach

    def expected_flow(self, include_query: bool = False) -> float:
        """Return the expected information flow towards Q of the selected subgraph."""
        reach = self.reachability_to_query()
        total = 0.0
        for vertex, probability in reach.items():
            if vertex == self.query:
                continue
            total += probability * self.graph.weight(vertex)
        if include_query:
            total += self.graph.weight(self.query)
        return total

    def flow_interval(self, alpha: float = 0.01, include_query: bool = False) -> Tuple[float, float]:
        """Return a (lower, upper) confidence interval on the expected flow.

        Mono components and exactly-evaluated bi components contribute
        with zero width; sampled bi components contribute per-vertex
        normal-approximation intervals (Definition 10) which are
        propagated multiplicatively down the component tree.
        """
        z = standard_normal_quantile(1.0 - alpha / 2.0)
        lower: Dict[VertexId, float] = {self.query: 1.0}
        upper: Dict[VertexId, float] = {self.query: 1.0}
        for component in self._topological_components():
            anchor_lower = lower.get(component.articulation)
            anchor_upper = upper.get(component.articulation)
            if anchor_lower is None or anchor_upper is None:
                raise FTreeInvariantError(
                    f"anchor {component.articulation!r} evaluated before its parent"
                )
            local = component.local_reachability(self.graph, self.sampler)
            sampled = (
                not component.is_mono
                and isinstance(component, BiConnectedComponent)
                and not component.reach_exact
                and component.reach_samples is not None
            )
            for vertex, probability in local.items():
                if sampled:
                    n = component.reach_samples or 1
                    half_width = z * (probability * (1.0 - probability) / n) ** 0.5
                    local_lower = max(0.0, probability - half_width)
                    local_upper = min(1.0, probability + half_width)
                else:
                    local_lower = local_upper = probability
                lower[vertex] = local_lower * anchor_lower
                upper[vertex] = local_upper * anchor_upper
        flow_lower = 0.0
        flow_upper = 0.0
        for vertex in lower:
            if vertex == self.query:
                continue
            weight = self.graph.weight(vertex)
            flow_lower += lower[vertex] * weight
            flow_upper += upper[vertex] * weight
        if include_query:
            query_weight = self.graph.weight(self.query)
            flow_lower += query_weight
            flow_upper += query_weight
        return flow_lower, flow_upper

    def pending_estimation_cost(self) -> int:
        """Return the number of edges in stale bi components not served by the memo cache.

        This is the ``cost(e)`` of the delayed-sampling heuristic
        (Section 6.4): zero when every stale component is either small
        enough for exact evaluation or already memoized.
        """
        cost = 0
        for component in self._components.values():
            if component.is_mono or not isinstance(component, BiConnectedComponent):
                continue
            if not component.needs_estimation:
                continue
            cost += self.sampler.estimation_cost(component.edges(), component.articulation)
        return cost

    # ------------------------------------------------------------------
    # copying and verification
    # ------------------------------------------------------------------
    def clone(self) -> "FTree":
        """Return a deep copy sharing the graph and the sampler (and its memo cache)."""
        clone = FTree(self.graph, self.query, sampler=self.sampler)
        clone._components = {
            component_id: component.clone()
            for component_id, component in self._components.items()
        }
        clone._owner = dict(self._owner)
        clone._selected = set(self._selected)
        clone._next_id = self._next_id
        clone._root_mono_id = self._root_mono_id
        return clone

    def check_invariants(self) -> None:
        """Verify the structural invariants of Definition 9; raise on violation."""
        seen_vertices: Set[VertexId] = set()
        component_edges: List[Edge] = []
        for component in self._components.values():
            if isinstance(component, MonoConnectedComponent):
                component.check_invariants()
            elif isinstance(component, BiConnectedComponent):
                component.check_invariants()
            if self.query in component.vertices:
                raise FTreeInvariantError("the query vertex must never be owned by a component")
            overlap = component.vertices & seen_vertices
            if overlap:
                raise FTreeInvariantError(
                    f"vertices {overlap!r} are owned by more than one component"
                )
            seen_vertices |= component.vertices
            for vertex in component.vertices:
                if self._owner.get(vertex) != component.component_id:
                    raise FTreeInvariantError(
                        f"ownership map disagrees with component {component.component_id} "
                        f"about vertex {vertex!r}"
                    )
            component_edges.extend(component.edges())
        if set(self._owner) != seen_vertices:
            raise FTreeInvariantError("ownership map references vertices owned by no component")
        if len(component_edges) != len(set(component_edges)):
            raise FTreeInvariantError("an edge belongs to more than one component")
        if set(component_edges) != self._selected:
            raise FTreeInvariantError(
                "the union of component edges does not equal the selected edge set"
            )
        for edge in self._selected:
            if not self.graph.has_edge(edge.u, edge.v):
                raise FTreeInvariantError(f"selected edge {edge!r} is not in the graph")
        # the ancestry must be acyclic and terminate at Q
        self._topological_components()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<FTree Q={self.query!r}: {len(self._components)} components, "
            f"{len(self._selected)} selected edges>"
        )

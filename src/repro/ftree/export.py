"""Export utilities for F-trees and uncertain graphs.

Produces Graphviz DOT text (no graphviz dependency required — the output
is plain text that ``dot -Tpng`` can render) and a compact JSON-able
summary of an F-tree's component structure.  Useful for debugging the
incremental insertion cases and for documenting experiments.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ftree.components import BiConnectedComponent
from repro.ftree.ftree import FTree
from repro.graph.uncertain_graph import UncertainGraph

#: colour palette cycled over components in the DOT output
_COMPONENT_COLOURS = (
    "#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f", "#cab2d6",
    "#ffff99", "#1f78b4", "#33a02c", "#e31a1c", "#ff7f00",
)


def graph_to_dot(graph: UncertainGraph, name: str = "uncertain_graph") -> str:
    """Render an uncertain graph as Graphviz DOT text.

    Edge labels carry the existence probability, vertex labels the
    information weight.
    """
    lines = [f"graph {_dot_identifier(name)} {{", "  node [shape=circle];"]
    for vertex in graph.vertices():
        label = f"{vertex}\\nw={graph.weight(vertex):g}"
        lines.append(f"  {_dot_identifier(str(vertex))} [label=\"{label}\"];")
    for edge in graph.edges():
        lines.append(
            f"  {_dot_identifier(str(edge.u))} -- {_dot_identifier(str(edge.v))} "
            f"[label=\"{graph.probability(edge):.2f}\"];"
        )
    lines.append("}")
    return "\n".join(lines)


def ftree_to_dot(ftree: FTree, name: str = "ftree") -> str:
    """Render an F-tree as DOT text: one cluster per component, coloured by kind.

    The query vertex is drawn as a double circle; every component's
    articulation vertex is connected to the cluster with a dashed edge so
    the information-flow direction is visible.
    """
    lines = [f"graph {_dot_identifier(name)} {{", "  compound=true;", "  node [shape=circle];"]
    lines.append(
        f"  {_dot_identifier(str(ftree.query))} [shape=doublecircle, label=\"{ftree.query}\"];"
    )
    for index, component in enumerate(sorted(ftree.components(), key=lambda c: c.component_id)):
        colour = _COMPONENT_COLOURS[index % len(_COMPONENT_COLOURS)]
        kind = "mono" if component.is_mono else "bi"
        lines.append(f"  subgraph cluster_{component.component_id} {{")
        lines.append(f"    label=\"{kind} #{component.component_id} (AV {component.articulation})\";")
        lines.append(f"    style=filled; fillcolor=\"{colour}\";")
        for vertex in sorted(component.vertices, key=str):
            lines.append(f"    {_dot_identifier(str(vertex))};")
        lines.append("  }")
        for edge in sorted(component.edges(), key=repr):
            probability = ftree.graph.probability(edge)
            lines.append(
                f"  {_dot_identifier(str(edge.u))} -- {_dot_identifier(str(edge.v))} "
                f"[label=\"{probability:.2f}\"];"
            )
    lines.append("}")
    return "\n".join(lines)


def ftree_summary(ftree: FTree) -> Dict[str, object]:
    """Return a JSON-able summary of the F-tree structure.

    Includes per-component kind, articulation vertex, owned vertices and
    (for bi components) whether the cached reachability is fresh — the
    information needed to understand what an edge insertion changed.
    """
    components: List[Dict[str, object]] = []
    for component in sorted(ftree.components(), key=lambda c: c.component_id):
        entry: Dict[str, object] = {
            "id": component.component_id,
            "kind": "mono" if component.is_mono else "bi",
            "articulation": component.articulation,
            "vertices": sorted(component.vertices, key=str),
            "n_edges": len(component.edges()),
        }
        if isinstance(component, BiConnectedComponent):
            entry["estimated"] = not component.needs_estimation
            entry["exact"] = component.reach_exact
        components.append(entry)
    return {
        "query": ftree.query,
        "n_selected_edges": ftree.n_selected,
        "n_components": len(components),
        "n_bi_components": sum(1 for entry in components if entry["kind"] == "bi"),
        "components": components,
    }


def _dot_identifier(token: str) -> str:
    """Quote a token so it is always a valid DOT identifier."""
    escaped = token.replace("\"", "\\\"")
    return f"\"{escaped}\""

"""Shard planning: how one sampling request splits into fixed-size pieces.

A :class:`ShardPlan` is pure arithmetic — ``n_samples`` worlds split
into ``ceil(n_samples / shard_size)`` shards, every shard full except
possibly the last — and is therefore identical for every executor and
worker count.  The plan's shard count is what the deterministic
seed-splitting keys on (shard ``i`` always receives child seed ``i``),
so the plan is part of the reproducibility contract: results are a
function of ``(seed, n_samples, shard_size)`` and nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro._runtime_state import (
    defaults as _runtime_defaults,
    resolve_field,
    warn_deprecated,
)

#: Default worlds per shard.  Small enough that a paper-scale request
#: (1000-5000 samples) splits into enough shards to keep several workers
#: busy, large enough that per-shard dispatch overhead stays negligible.
DEFAULT_SHARD_SIZE = 256


def get_default_shard_size() -> int:
    """Return the shard size every unspecified ``shard_size=None`` resolves to.

    Resolution order: the innermost active :func:`repro.session` (if it
    pins a shard size) → ``repro.runtime.defaults.shard_size`` →
    :data:`DEFAULT_SHARD_SIZE`.
    """
    return resolve_field("shard_size", DEFAULT_SHARD_SIZE)


def set_default_shard_size(shard_size: int) -> int:
    """Deprecated shim over ``repro.runtime.defaults.shard_size``.

    Returns the previously resolved default, mirroring the legacy
    contract.  Prefer ``with repro.session(shard_size=...)`` for scoped
    configuration, or assign ``repro.runtime.defaults.shard_size``
    directly.  Remember that shard size is part of the determinism key:
    changing it re-keys the per-shard seed split.
    """
    warn_deprecated(
        "repro.parallel.set_default_shard_size()",
        'use "with repro.session(shard_size=...)" for scoped configuration, '
        "or assign repro.runtime.defaults.shard_size for a process-wide default",
    )
    if shard_size <= 0:
        raise ValueError(f"shard_size must be positive, got {shard_size!r}")
    previous = (
        _runtime_defaults.shard_size
        if _runtime_defaults.shard_size is not None
        else DEFAULT_SHARD_SIZE
    )
    _runtime_defaults.shard_size = int(shard_size)
    return previous


@dataclass(frozen=True)
class ShardPlan:
    """The split of ``n_samples`` worlds into fixed-size shards.

    Attributes
    ----------
    n_samples:
        Total number of worlds requested (may be zero).
    shard_size:
        Worlds per shard; every shard holds exactly this many except
        possibly the last one, which holds the remainder.
    """

    n_samples: int
    shard_size: int

    def __post_init__(self) -> None:
        if self.n_samples < 0:
            raise ValueError(f"n_samples must be non-negative, got {self.n_samples!r}")
        if self.shard_size <= 0:
            raise ValueError(f"shard_size must be positive, got {self.shard_size!r}")

    @property
    def n_shards(self) -> int:
        """Number of shards (zero when no samples were requested)."""
        return -(-self.n_samples // self.shard_size)

    @property
    def shard_sizes(self) -> Tuple[int, ...]:
        """Per-shard world counts, in shard order; sums to ``n_samples``."""
        full, remainder = divmod(self.n_samples, self.shard_size)
        sizes = [self.shard_size] * full
        if remainder:
            sizes.append(remainder)
        return tuple(sizes)

    def offsets(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(start, stop)`` sample offsets per shard, in shard order."""
        start = 0
        for size in self.shard_sizes:
            yield start, start + size
            start += size


def plan_shards(n_samples: int, shard_size: int = DEFAULT_SHARD_SIZE) -> ShardPlan:
    """Build the shard plan for a sampling request (validates both inputs)."""
    return ShardPlan(n_samples=int(n_samples), shard_size=int(shard_size))

"""Parallel sharded sampling: the layer between the RNG and the engine.

The Monte-Carlo estimates of this library are embarrassingly parallel —
every possible world is independent — so this subsystem splits one
sampling request into fixed-size **shards**, gives each shard its own
child random stream, runs the shards on an executor, and concatenates
the partial results in shard order:

1. :mod:`repro.parallel.plan` — pure arithmetic: ``n_samples`` worlds
   split into ``ceil(n_samples / shard_size)`` shards (the last one
   partial);
2. :func:`repro.rng.split_seed_sequences` — deterministic seed
   splitting: shard ``i`` always receives the ``i``-th spawn of the
   request seed's :class:`numpy.random.SeedSequence`;
3. :mod:`repro.parallel.executor` — :class:`SerialExecutor` (the
   in-process reference) and :class:`ProcessExecutor` (a reusable
   process pool) run the shards; results are collected in shard order;
4. :mod:`repro.parallel.adaptive` — optional CI-driven stopping: keep
   drawing shards until the confidence interval of the estimate reaches
   a target width (``n_samples="auto"`` on the estimators).

**The determinism contract.**  A sharded result is a pure function of
``(seed, n_samples, shard_size)``.  Worker count, executor choice,
scheduling order and machine core count never change a single bit: each
shard's worlds depend only on its pre-split seed, and the reduction
concatenates in shard order, not completion order.  The worker-count
invariance tests pin ``ProcessExecutor(n)`` for several ``n`` against
:class:`SerialExecutor` on both sampling backends — estimates *and*
greedy selections must match exactly.  Changing ``shard_size`` is
allowed to change results (it re-keys the seed split, like changing the
seed); changing ``workers`` is not.

Sharded sampling draws different (equally valid) worlds than the
original single-stream path, so ``executor=None`` — the default
everywhere — keeps the historical unsharded stream byte-for-byte and
all pre-existing pinned results with it.
"""

from repro.parallel.adaptive import ADAPTIVE_CI_METHODS, AUTO_SAMPLES, AdaptiveSettings
from repro.parallel.executor import (
    REMOTE_SPEC_PREFIX,
    ExecutorLike,
    ProcessExecutor,
    SamplingExecutor,
    SerialExecutor,
    ShardTask,
    get_default_executor,
    make_executor,
    parse_remote_spec,
    resolve_executor,
    run_shard,
    set_default_executor,
)
from repro.parallel.plan import (
    DEFAULT_SHARD_SIZE,
    ShardPlan,
    get_default_shard_size,
    plan_shards,
    set_default_shard_size,
)

__all__ = [
    "ADAPTIVE_CI_METHODS",
    "AUTO_SAMPLES",
    "AdaptiveSettings",
    "DEFAULT_SHARD_SIZE",
    "ExecutorLike",
    "ProcessExecutor",
    "REMOTE_SPEC_PREFIX",
    "SamplingExecutor",
    "SerialExecutor",
    "ShardPlan",
    "ShardTask",
    "get_default_executor",
    "get_default_shard_size",
    "make_executor",
    "parse_remote_spec",
    "plan_shards",
    "resolve_executor",
    "run_shard",
    "set_default_executor",
    "set_default_shard_size",
]

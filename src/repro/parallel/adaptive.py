"""Adaptive CI-driven stopping for sharded Monte-Carlo sampling.

The paper runs every estimation at a fixed sample budget (1000 worlds),
which wastes work on easy instances: a reachability probability near 0
or 1 is pinned down tightly after a few hundred worlds.  Adaptive mode
(``n_samples="auto"`` on the estimators) instead draws *shards* of
worlds until the confidence interval of the quantity being estimated —
Wilson or normal for reachability probabilities, the weighted flow
interval for expected flow (:mod:`repro.reachability.confidence`) — is
narrower than a target width, with a hard sample cap as the backstop.

Determinism: the shard schedule below is a pure function of the settings
and the shard size — rounds draw 1, 2, 4, … shards (doubling saturates a
process pool after the first rounds) regardless of how many workers run
them, and shard seeds come from the same pre-split sequence as fixed
budgets.  The stopping decision therefore depends only on
``(seed, settings, shard_size)``: adaptive estimates are bit-for-bit
identical for any worker count, just like fixed-budget ones.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Iterator

from repro.parallel.plan import plan_shards

logger = logging.getLogger(__name__)

#: Interval methods accepted by :class:`AdaptiveSettings`.
ADAPTIVE_CI_METHODS = ("wilson", "normal")

#: Sentinel accepted by the estimators' ``n_samples`` argument.
AUTO_SAMPLES = "auto"


@dataclass(frozen=True)
class AdaptiveSettings:
    """Stopping rule for adaptive (``n_samples="auto"``) sampling.

    Attributes
    ----------
    target_width:
        Stop once the confidence interval is at most this wide.  For
        reachability estimates the width is in probability units; for
        expected flow it is in flow units (weights included).
    alpha:
        Significance level of the interval (``1 - alpha`` coverage).
    method:
        ``"wilson"`` (default; better behaved near 0/1) or ``"normal"``
        (the paper's Definition 10 interval).
    max_samples:
        Hard cap; sampling stops here even if the target width was not
        reached.
    min_samples:
        Never stop before this many worlds — guards against an interval
        that looks deceptively narrow after a handful of all-identical
        worlds.
    """

    target_width: float = 0.05
    alpha: float = 0.05
    method: str = "wilson"
    max_samples: int = 10_000
    min_samples: int = 100

    def __post_init__(self) -> None:
        if self.target_width <= 0.0:
            raise ValueError(f"target_width must be positive, got {self.target_width!r}")
        if not 0.0 < self.alpha < 1.0:
            raise ValueError(f"alpha must lie in (0, 1), got {self.alpha!r}")
        if self.method not in ADAPTIVE_CI_METHODS:
            raise ValueError(
                f"unknown interval method {self.method!r}; expected one of {ADAPTIVE_CI_METHODS}"
            )
        if self.max_samples <= 0:
            raise ValueError(f"max_samples must be positive, got {self.max_samples!r}")
        if self.min_samples <= 0:
            raise ValueError(f"min_samples must be positive, got {self.min_samples!r}")
        if self.min_samples > self.max_samples:
            raise ValueError(
                f"min_samples ({self.min_samples}) cannot exceed max_samples ({self.max_samples})"
            )


def shard_rounds(settings: AdaptiveSettings, shard_size: int) -> Iterator[int]:
    """Yield the shard count of each adaptive round (1, 2, 4, … doubling).

    The schedule covers exactly the shards of ``plan_shards(max_samples,
    shard_size)`` — the last round is clipped to the cap — and depends
    only on the settings and shard size, never on worker count, which is
    what keeps adaptive stopping worker-invariant.
    """
    total_shards = plan_shards(settings.max_samples, shard_size).n_shards
    if logger.isEnabledFor(logging.DEBUG):
        logger.debug(
            "adaptive schedule: %d shard(s) of %d world(s) toward the %d-sample cap",
            total_shards,
            shard_size,
            settings.max_samples,
        )
    drawn = 0
    round_shards = 1
    while drawn < total_shards:
        take = min(round_shards, total_shards - drawn)
        yield take
        drawn += take
        round_shards *= 2

"""Sampling executors: serial reference and process-pool fan-out.

An executor runs the shards of one :class:`~repro.parallel.plan.ShardPlan`
and returns the partial results **in shard order**.  Every shard is a
self-contained :class:`ShardTask` — the indexed sampling problem, the
shard's world count, its own pre-split child seed and the backend to run
— so a shard computes the same ``(n_samples, …)`` block no matter which
worker executes it or when.  Collecting in shard order is what turns
that into the subsystem's hard guarantee: the reduced result is
bit-for-bit identical for any worker count.

:class:`SerialExecutor` is the executable specification (shards run
in-process, in order); :class:`ProcessExecutor` fans the same tasks out
over a :class:`concurrent.futures.ProcessPoolExecutor` and is pinned
against the serial reference by the worker-count invariance tests.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro._runtime_state import (
    UNSET,
    current_effective,
    defaults as _runtime_defaults,
    normalize_store_field,
    warn_deprecated,
)
from repro.exceptions import WorkerCrashedError
from repro.reachability.backends.base import SamplingProblem, sample_flips
from repro.telemetry import current_telemetry

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ShardTask:
    """One shard of a sampling request, ready to run on any worker.

    Attributes
    ----------
    problem:
        The indexed sampling problem (shared by all shards of a request).
    n_samples:
        Worlds this shard draws.
    seed:
        The shard's pre-split child seed sequence (see
        :func:`repro.rng.split_seed_sequences`); owning its own seed is
        what makes the shard relocatable across workers.
    backend:
        Backend whose ``sample_reachability`` the shard runs, or ``None``
        to draw the raw edge-flip matrix instead (the
        :class:`~repro.reachability.engine.FlipBatch` path).
    """

    problem: SamplingProblem
    n_samples: int
    seed: np.random.SeedSequence
    backend: Optional[object] = None


def run_shard(task: ShardTask) -> np.ndarray:
    """Execute one shard; the single entry point every executor dispatches.

    Module-level (and operating only on the picklable task) so process
    pools can ship it to workers unchanged.
    """
    rng = np.random.default_rng(task.seed)
    if task.backend is None:
        return sample_flips(task.problem, task.n_samples, rng)
    return task.backend.sample_reachability(task.problem, task.n_samples, rng)


def _timed_run_shard(task: ShardTask) -> Tuple[float, np.ndarray]:
    """:func:`run_shard` plus its in-worker runtime (telemetry-enabled path).

    The duration is measured inside the worker process, so the parent
    can split a shard's round-trip into true runtime versus queue wait +
    transfer.  The array is byte-identical to :func:`run_shard`'s.
    """
    started = time.perf_counter()
    result = run_shard(task)
    return time.perf_counter() - started, result


def _note_done_time(future) -> None:
    """Done-callback stamping a future's completion time (collector thread)."""
    future._repro_done_at = time.perf_counter()


class SamplingExecutor(ABC):
    """Runs shard tasks and returns their results in shard order."""

    #: worker count the executor fans out over (1 for the serial reference)
    workers: int = 1

    @abstractmethod
    def map_shards(self, tasks: Sequence[ShardTask]) -> List[np.ndarray]:
        """Run every task and return the per-shard arrays in task order."""

    def close(self) -> None:
        """Release any worker resources (idempotent; a no-op by default)."""

    def __enter__(self) -> "SamplingExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(SamplingExecutor):
    """The reference executor: shards run in-process, in shard order.

    Produces exactly the output every parallel executor is pinned
    against — same shards, same child seeds, same reduction order — so
    ``SerialExecutor`` versus ``ProcessExecutor(n)`` is purely a
    wall-clock choice.
    """

    workers = 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<SerialExecutor>"

    def map_shards(self, tasks: Sequence[ShardTask]) -> List[np.ndarray]:
        tel = current_telemetry()
        if not tel.enabled:
            return [run_shard(task) for task in tasks]
        results: List[np.ndarray] = []
        with tel.span("executor.map_shards", executor="serial", n_shards=len(tasks)):
            for task in tasks:
                started = time.perf_counter()
                results.append(run_shard(task))
                tel.observe("executor.shard_seconds", time.perf_counter() - started)
        tel.count("executor.shards_run", len(tasks))
        return results


class ProcessExecutor(SamplingExecutor):
    """Fans shards out over a lazily created process pool.

    Parameters
    ----------
    workers:
        Worker process count (defaults to the machine's CPU count).

    The pool is created on first use and reused across calls; call
    :meth:`close` (or use the executor as a context manager) to release
    the worker processes.  Results are collected in submission order, so
    the reduction is independent of which worker finishes first.
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        resolved = int(workers) if workers is not None else (os.cpu_count() or 1)
        if resolved <= 0:
            raise ValueError(f"workers must be positive, got {workers!r}")
        self.workers = resolved
        self._pool = None
        # guards pool creation/teardown: two threads sharing one executor
        # (a shared session, runtime.defaults.executor) must never each
        # build a ProcessPoolExecutor — the loser's worker processes would
        # leak forever and the closed flag would desync
        self._pool_lock = threading.Lock()
        #: True after :meth:`close` until the pool is next used; lets
        #: lifecycle owners (harness, CLI, tests) assert that no worker
        #: processes outlive their run even on error paths
        self.closed = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ProcessExecutor workers={self.workers}>"

    def _ensure_pool(self):
        with self._pool_lock:
            if self._pool is None:
                import concurrent.futures
                import multiprocessing

                # fork (where available) avoids re-importing NumPy per worker;
                # the result is identical either way because every shard
                # carries its own seed
                methods = multiprocessing.get_all_start_methods()
                context = multiprocessing.get_context("fork" if "fork" in methods else None)
                self._pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=context
                )
                self.closed = False
                logger.debug("built process pool with %d workers", self.workers)
                tel = current_telemetry()
                if tel.enabled:
                    tel.count("executor.pool_builds")
            return self._pool

    def map_shards(self, tasks: Sequence[ShardTask]) -> List[np.ndarray]:
        tasks = list(tasks)
        if not tasks:
            return []
        from concurrent.futures.process import BrokenProcessPool

        tel = current_telemetry()
        pool = self._ensure_pool()
        try:
            if not tel.enabled:
                return list(pool.map(run_shard, tasks, chunksize=1))
            return self._map_shards_timed(pool, tasks, tel)
        except BrokenProcessPool as error:
            # a worker died mid-batch (OOM kill, SIGKILL, hard crash);
            # the pool is permanently unusable — discard it so the next
            # call rebuilds instead of failing forever, and surface a
            # typed, actionable error instead of the opaque stdlib one
            self._discard_pool(pool)
            if tel.enabled:
                tel.count("executor.worker_crashes")
            logger.warning(
                "worker process crashed mid-batch (pool of %d workers): %s — "
                "pool discarded, the next call rebuilds it",
                self.workers,
                str(error) or "no detail",
            )
            raise WorkerCrashedError(self.workers, detail=str(error) or "") from error

    def _map_shards_timed(self, pool, tasks: Sequence[ShardTask], tel) -> List[np.ndarray]:
        """The telemetry-enabled fan-out: same shards, same order, timed.

        Shards are submitted and collected in task order (exactly the
        reduction of ``pool.map``), but each runs through
        :func:`_timed_run_shard` so the in-worker runtime comes back with
        the result; the difference between a future's submit→done
        interval and that runtime is the shard's queue wait (+ transfer).
        Results are byte-identical to the un-instrumented path.
        """
        with tel.span(
            "executor.map_shards",
            executor="process",
            workers=self.workers,
            n_shards=len(tasks),
        ):
            submits = []
            futures = []
            for task in tasks:
                submits.append(time.perf_counter())
                future = pool.submit(_timed_run_shard, task)
                future.add_done_callback(_note_done_time)
                futures.append(future)
            results: List[np.ndarray] = []
            for submitted, future in zip(submits, futures):
                runtime, part = future.result()
                tel.observe("executor.shard_seconds", runtime)
                done_at = getattr(future, "_repro_done_at", None)
                if done_at is not None:
                    tel.observe(
                        "executor.queue_wait_seconds",
                        max(0.0, (done_at - submitted) - runtime),
                    )
                results.append(part)
        tel.count("executor.shards_run", len(tasks))
        return results

    def _discard_pool(self, pool) -> None:
        """Drop a broken pool without blocking on its wedged workers."""
        with self._pool_lock:
            if self._pool is pool:
                self._pool = None
        pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
            self.closed = True
        if pool is not None:
            pool.shutdown(wait=True)

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown timing
        # The finalizer must never block interpreter exit behind wedged
        # workers, so unlike close() it abandons outstanding work:
        # shutdown(wait=False, cancel_futures=True).
        try:
            pool = self.__dict__.get("_pool")
            self._pool = None
            self.closed = True
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass


#: Accepted forms of an executor specification: ``None`` (no sharding /
#: defer to the process-wide default), a worker count (1 -> serial,
#: > 1 -> process pool), a ``"remote:HOST:PORT"`` coordinator spec, or
#: an executor instance.
ExecutorLike = Union[None, int, str, SamplingExecutor]

#: String executor specs starting with this build a
#: :class:`repro.distributed.RemoteExecutor` listening on the given
#: ``HOST:PORT`` for worker registrations.
REMOTE_SPEC_PREFIX = "remote:"


def parse_remote_spec(spec: str) -> Tuple[str, int]:
    """Validate a ``"remote:HOST:PORT"`` spec into its ``(host, port)``.

    Lives here (not in :mod:`repro.distributed`) so configuration layers
    can validate specs without importing the distributed tier.
    """
    if not spec.startswith(REMOTE_SPEC_PREFIX):
        raise ValueError(
            f"executor spec strings must look like 'remote:HOST:PORT', got {spec!r}"
        )
    endpoint = spec[len(REMOTE_SPEC_PREFIX) :]
    host, sep, port_text = endpoint.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"remote executor spec {spec!r} must name both a host and a port "
            f"('remote:HOST:PORT'; the coordinator listens there for workers)"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"remote executor spec {spec!r} has a non-numeric port {port_text!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(f"remote executor spec {spec!r} port must be 0-65535")
    return host, port


def make_executor(executor: ExecutorLike) -> Optional[SamplingExecutor]:
    """Resolve an executor spec into an instance (or ``None`` for unsharded).

    Integer specs mean a worker count: ``1`` builds the serial reference
    executor (sharded seed-splitting, no processes), anything larger a
    :class:`ProcessExecutor`.  A ``"remote:HOST:PORT"`` string builds a
    :class:`repro.distributed.RemoteExecutor` coordinator listening on
    that endpoint (``PORT`` 0 binds an ephemeral port).  Instances pass
    through unchanged so one pool can be shared across engines, contexts
    and samplers.
    """
    if executor is None:
        return None
    if isinstance(executor, SamplingExecutor):
        return executor
    if isinstance(executor, bool):
        raise TypeError("executor must be a worker count or SamplingExecutor, not bool")
    if isinstance(executor, int):
        if executor <= 0:
            raise ValueError(f"worker count must be positive, got {executor!r}")
        return SerialExecutor() if executor == 1 else ProcessExecutor(executor)
    if isinstance(executor, str):
        host, port = parse_remote_spec(executor)
        # deferred so importing repro.parallel never drags the network
        # tier in (and to keep the module graph acyclic)
        from repro.distributed import RemoteExecutor

        return RemoteExecutor(host, port)
    raise TypeError(f"cannot interpret {executor!r} as a sampling executor")


def get_default_executor() -> Optional[SamplingExecutor]:
    """Return the executor every unspecified ``executor=None`` resolves to.

    Resolution order: the innermost active :func:`repro.session` (if it
    pins workers/executor) → ``repro.runtime.defaults.executor`` →
    ``None``.  ``None`` — the initial state — means sampling stays
    unsharded single-process, i.e. exactly the pre-subsystem behaviour.
    A raw spec assigned to ``repro.runtime.defaults.executor`` (e.g. a
    worker count) is normalized through :func:`make_executor` here, so
    direct store assignments behave like the legacy setter did.
    """
    effective = current_effective()
    if effective is not None and effective.executor is not UNSET:
        return effective.executor
    # raw specs in the store are normalized once and pinned, so an int
    # spec does not build a fresh pool on every resolution (or two pools
    # under concurrent first resolutions)
    return normalize_store_field(
        "executor",
        lambda value: value is not None and not isinstance(value, SamplingExecutor),
        make_executor,
    )


def set_default_executor(executor: ExecutorLike) -> Optional[SamplingExecutor]:
    """Deprecated shim over ``repro.runtime.defaults.executor``.

    Returns the previously stored default, mirroring the legacy
    contract.  Prefer ``with repro.session(workers=...)`` for scoped
    configuration (the session then also owns the pool's lifecycle), or
    assign a resolved executor to ``repro.runtime.defaults.executor``
    directly.  Pass ``None`` to restore unsharded sampling.
    """
    warn_deprecated(
        "repro.parallel.set_default_executor()",
        'use "with repro.session(workers=...)" for scoped configuration, '
        "or assign repro.runtime.defaults.executor for a process-wide default",
    )
    previous = _runtime_defaults.executor
    _runtime_defaults.executor = make_executor(executor)
    return previous


def resolve_executor(executor: ExecutorLike) -> Optional[SamplingExecutor]:
    """Resolve a call-site spec, falling back to the session/process default."""
    if executor is None:
        return get_default_executor()
    return make_executor(executor)

"""Prometheus-text exposition of the telemetry and server metrics.

Renders a :meth:`~repro.telemetry.registry.MetricsRegistry.snapshot`
(and the server's merged observability payload) into the Prometheus
text exposition format (version 0.0.4) — the lingua franca every
scraper understands — without depending on any Prometheus client
library:

* counters → ``repro_<name>_total`` with ``# TYPE ... counter``;
* gauges → ``repro_<name>``;
* histograms → ``_bucket{le="..."}`` series with **cumulative** counts
  and the mandatory ``+Inf`` bucket, plus ``_sum`` / ``_count``, plus a
  companion gauge family ``repro_<name>_quantile{quantile="0.5|0.95|0.99"}``
  interpolated from the buckets by
  :func:`repro.telemetry.registry.bucket_quantile`.

Two transports serve the same text: the ``metrics_text`` control kind on
the JSONL protocol (:mod:`repro.server.protocol`) and the
:class:`MetricsHTTPServer` ``/metrics`` scrape endpoint — a stdlib
:class:`~http.server.ThreadingHTTPServer` the :class:`repro.server.app.ReproServer`
stands up next to its TCP listener (``repro serve --metrics-port``).

:class:`WindowRates` is the periodic snapshot-delta companion: fed the
server's metrics payload every interval, it turns lifetime totals into
windowed rates (qps, cache hit-rate, rejection-rate) published as
plain gauges so a scrape shows current load, not just since-boot sums.
"""

from __future__ import annotations

import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple

from repro.telemetry.registry import bucket_quantile

#: Content type of the Prometheus text exposition format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Quantiles estimated from every histogram's buckets.
QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str, prefix: str = "repro") -> str:
    """Map a dotted registry name onto a legal Prometheus metric name.

    ``engine.worlds_sampled`` → ``repro_engine_worlds_sampled``; any
    character outside ``[a-zA-Z0-9_:]`` becomes ``_``, and a leading
    digit gets an underscore prepended.
    """
    sanitized = _INVALID_CHARS.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"{prefix}_{sanitized}" if prefix else sanitized


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _sample(
    name: str, value: float, labels: Optional[Dict[str, object]] = None
) -> str:
    if labels:
        rendered = ",".join(
            f'{key}="{_escape_label(str(val))}"' for key, val in sorted(labels.items())
        )
        return f"{name}{{{rendered}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


class _TextBuilder:
    """Accumulates exposition lines, emitting each ``# TYPE`` once."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self._typed: set = set()

    def _type(self, family: str, kind: str) -> None:
        if family not in self._typed:
            self._typed.add(family)
            self.lines.append(f"# TYPE {family} {kind}")

    def counter(self, family: str, value: float, labels=None) -> None:
        self._type(family, "counter")
        self.lines.append(_sample(family, value, labels))

    def gauge(self, family: str, value: Optional[float], labels=None) -> None:
        if value is None:
            return
        self._type(family, "gauge")
        self.lines.append(_sample(family, value, labels))

    def histogram(self, family: str, summary: Dict[str, object]) -> None:
        """Emit one histogram family from a registry ``summary()`` dict."""
        self._type(family, "histogram")
        cumulative = 0
        bounds: List[float] = []
        counts: List[int] = []
        for bucket in summary["buckets"]:  # type: ignore[index]
            counts.append(int(bucket["count"]))
            if bucket["le"] is not None:
                bounds.append(float(bucket["le"]))
                cumulative += int(bucket["count"])
                self.lines.append(
                    _sample(f"{family}_bucket", cumulative, {"le": _format_value(bucket["le"])})
                )
        self.lines.append(
            _sample(f"{family}_bucket", int(summary["count"]), {"le": "+Inf"})
        )
        self.lines.append(_sample(f"{family}_sum", float(summary["sum"])))
        self.lines.append(_sample(f"{family}_count", int(summary["count"])))
        count = int(summary["count"])
        if count:
            lo = float(summary["min"])  # type: ignore[arg-type]
            hi = float(summary["max"])  # type: ignore[arg-type]
            for q in QUANTILES:
                estimate = bucket_quantile(bounds, counts, count, lo, hi, q)
                if estimate is not None:
                    self.gauge(
                        f"{family}_quantile", estimate, {"quantile": _format_value(q)}
                    )

    def text(self) -> str:
        return "\n".join(self.lines) + "\n" if self.lines else ""


def render_registry(
    snapshot: Dict[str, Dict[str, object]], prefix: str = "repro"
) -> str:
    """Render one ``MetricsRegistry.snapshot()`` as Prometheus text."""
    builder = _TextBuilder()
    _render_registry_into(builder, snapshot, prefix)
    return builder.text()


def _render_registry_into(
    builder: _TextBuilder, snapshot: Dict[str, Dict[str, object]], prefix: str
) -> None:
    for name, value in snapshot.get("counters", {}).items():
        builder.counter(f"{sanitize_metric_name(name, prefix)}_total", value)
    for name, value in snapshot.get("gauges", {}).items():
        builder.gauge(sanitize_metric_name(name, prefix), value)
    for name, summary in snapshot.get("histograms", {}).items():
        builder.histogram(sanitize_metric_name(name, prefix), summary)


def render_server_text(payload: Dict[str, object]) -> str:
    """Render the server's merged ``metrics`` payload as Prometheus text.

    Input is exactly what the ``metrics`` control kind returns
    (``ReproServer._metrics_payload()``): request/coalescing/latency
    sections, cache stats, executor info, and the shared telemetry
    registry snapshot.  Every numeric field becomes a sample, so a
    ``/metrics`` scrape and a ``metrics`` control response always agree
    — pinned by ``tests/test_profiling.py``.
    """
    builder = _TextBuilder()
    requests: Dict[str, object] = payload.get("requests", {})  # type: ignore[assignment]
    for field in ("admitted", "answered", "failed", "bad_requests", "control"):
        if field in requests:
            builder.counter(f"repro_server_{field}_total", requests[field])
    for kind, count in sorted(requests.get("answered_by_kind", {}).items()):  # type: ignore[union-attr]
        builder.counter("repro_server_answered_by_kind_total", count, {"kind": kind})
    for error_type, count in sorted(requests.get("rejected", {}).items()):  # type: ignore[union-attr]
        builder.counter("repro_server_rejected_total", count, {"error_type": error_type})

    coalescing: Dict[str, object] = payload.get("coalescing", {})  # type: ignore[assignment]
    for field in ("batches", "batched_requests"):
        if field in coalescing:
            builder.counter(f"repro_server_{field}_total", coalescing[field])
    builder.gauge("repro_server_largest_batch", coalescing.get("largest_batch"))
    builder.gauge("repro_server_mean_batch_size", coalescing.get("mean_batch_size"))

    latency: Dict[str, object] = payload.get("latency_ms", {})  # type: ignore[assignment]
    if "count" in latency:
        builder.counter("repro_server_latency_count_total", latency["count"])
    for field in ("mean", "p50", "p95", "p99", "max"):
        builder.gauge(f"repro_server_latency_ms_{field}", latency.get(field))

    for name, value in sorted(payload.get("cache", {}).items()):  # type: ignore[union-attr]
        builder.gauge(sanitize_metric_name(f"cache.{name}", "repro_server"), value)

    executor: Dict[str, object] = payload.get("executor", {})  # type: ignore[assignment]
    builder.gauge("repro_server_executor_workers", executor.get("workers"))
    builder.gauge("repro_server_executor_shard_size", executor.get("shard_size"))
    builder.gauge(
        "repro_server_executor_sharded", 1 if executor.get("sharded") else 0
    )

    builder.gauge("repro_server_inflight", payload.get("inflight"))
    builder.gauge("repro_server_max_inflight", payload.get("max_inflight"))
    builder.gauge("repro_server_tenants", payload.get("tenants"))

    rates: Dict[str, object] = payload.get("rates") or {}  # type: ignore[assignment]
    for field in ("qps", "hit_rate", "rejection_rate", "window_s"):
        builder.gauge(f"repro_server_rate_{field}", rates.get(field))

    telemetry = payload.get("telemetry")
    if telemetry:
        _render_registry_into(builder, telemetry, "repro")  # type: ignore[arg-type]
    return builder.text()


# ----------------------------------------------------------------------
# windowed rates from snapshot deltas
# ----------------------------------------------------------------------
class WindowRates:
    """Turns successive lifetime totals into windowed rate gauges.

    Call :meth:`update` with the current monotonic time and the server's
    metrics payload once per interval; it returns (and remembers for the
    snapshot) the rates over the *elapsed window*:

    * ``qps`` — answered requests per second;
    * ``hit_rate`` — world-cache hits / (hits + misses) in the window
      (``None`` while the window saw no cache traffic);
    * ``rejection_rate`` — rejections / (admitted + rejected) in the
      window (``None`` while it saw no admission decisions).

    The first update only records the baseline and returns ``None``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._last: Optional[Tuple[float, int, int, int, float, float]] = None
        self.rates: Optional[Dict[str, Optional[float]]] = None

    @staticmethod
    def _totals(payload: Dict[str, object]) -> Tuple[int, int, int, float, float]:
        requests: Dict[str, object] = payload.get("requests", {})  # type: ignore[assignment]
        rejected = requests.get("rejected", {})
        cache: Dict[str, float] = payload.get("cache", {})  # type: ignore[assignment]
        return (
            int(requests.get("answered", 0)),  # type: ignore[arg-type]
            int(requests.get("admitted", 0)),  # type: ignore[arg-type]
            sum(rejected.values()) if isinstance(rejected, dict) else 0,
            float(cache.get("hits", 0.0)),
            float(cache.get("misses", 0.0)),
        )

    def update(
        self, now: float, payload: Dict[str, object]
    ) -> Optional[Dict[str, Optional[float]]]:
        answered, admitted, rejected, hits, misses = self._totals(payload)
        with self._lock:
            last = self._last
            self._last = (now, answered, admitted, rejected, hits, misses)
            if last is None:
                return None
            then, answered0, admitted0, rejected0, hits0, misses0 = last
            window = now - then
            if window <= 0:
                return self.rates
            d_hits, d_misses = hits - hits0, misses - misses0
            d_admitted = admitted - admitted0
            d_rejected = rejected - rejected0
            decisions = d_admitted + d_rejected
            self.rates = {
                "qps": (answered - answered0) / window,
                "hit_rate": (
                    d_hits / (d_hits + d_misses) if (d_hits + d_misses) > 0 else None
                ),
                "rejection_rate": (d_rejected / decisions if decisions > 0 else None),
                "window_s": window,
            }
            return self.rates


# ----------------------------------------------------------------------
# the /metrics scrape endpoint
# ----------------------------------------------------------------------
class MetricsHTTPServer:
    """A stdlib HTTP server exposing one text callback at ``/metrics``.

    ``render`` is called per scrape on the serving thread (it must be
    thread-safe; both :func:`render_registry` over a snapshot and
    :func:`render_server_text` over a payload are).  ``port=0`` binds an
    ephemeral port — read :attr:`address` after :meth:`start`.
    """

    def __init__(
        self, render: Callable[[], str], host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self._render = render
        self._host = host
        self._port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        if self._httpd is None:
            raise RuntimeError("metrics server is not started")
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def start(self) -> "MetricsHTTPServer":
        if self._httpd is not None:
            raise RuntimeError("metrics server is already started")
        render = self._render

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - stdlib API
                if self.path.split("?", 1)[0] not in ("/metrics", "/"):
                    self.send_error(404, "only /metrics is served here")
                    return
                try:
                    body = render().encode("utf-8")
                except Exception as error:  # scrape must not kill the server
                    self.send_error(500, f"metrics rendering failed: {error}")
                    return
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format: str, *args: object) -> None:
                pass  # scrapes are high-frequency; stay quiet

        self._httpd = ThreadingHTTPServer((self._host, self._port), Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None


__all__ = [
    "CONTENT_TYPE",
    "QUANTILES",
    "MetricsHTTPServer",
    "WindowRates",
    "render_registry",
    "render_server_text",
    "sanitize_metric_name",
]

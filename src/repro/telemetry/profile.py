"""Opt-in resource profiling: CPU, allocation and GC deltas per span.

:class:`ProfilingTelemetry` is a drop-in :class:`~repro.telemetry.core.Telemetry`
whose spans additionally record

* **CPU time** — :func:`time.thread_time` deltas, so a span that waited
  on a lock or a queue shows near-zero CPU against real wall time;
* **allocated bytes** — :mod:`tracemalloc` current-usage deltas (may be
  negative when a span frees more than it allocates);
* **GC collections** — how many garbage collections ran inside the span
  (summed across generations), surfacing allocation-churn stalls.

Attribution is *self vs. cumulative*: a span's cumulative cost includes
its children, its self cost is the residue after subtracting them.  The
:func:`span_totals` aggregation works in integer microseconds with the
invariant ``cum(parent) >= sum(cum(children))``, so self values are
never negative and the collapsed-stack export (:func:`format_collapsed`,
one ``a;b;c <weight>`` line per stack, directly consumable by
``flamegraph.pl`` / speedscope) reconstructs every cumulative total
*exactly* via :func:`totals_from_collapsed` — pinned by
``tests/test_profiling.py``.

Profiling rides the normal resolution chain: ``profile=True`` on
:class:`repro.runtime.RuntimeConfig` / ``Session`` (or ``--profile`` on
the CLI) swaps the session's pipeline for a :class:`ProfilingTelemetry`;
everything downstream keeps calling ``tel.span(...)`` unchanged.  With
profiling off nothing here is ever imported at runtime and results are
bit-for-bit identical.

tracemalloc is process-wide, so allocation deltas are exact only for
single-threaded sections; CPU deltas are per-thread and stay exact under
concurrency.  :class:`ProfilingTelemetry` starts tracemalloc lazily on
first use (unless it is already running) and stops it on ``close()``
only if it was the one that started it.
"""

from __future__ import annotations

import gc
import time
import tracemalloc
from typing import Dict, Iterable, List, Optional, Tuple

from repro.telemetry.core import Telemetry
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.spans import SpanHandle, SpanRecord, iter_spans


def _gc_collections() -> int:
    """Total collections run so far, summed across generations."""
    return sum(stat["collections"] for stat in gc.get_stats())


class ProfileSpanRecord(SpanRecord):
    """A span record with CPU / allocation / GC deltas attached."""

    __slots__ = ("cpu_s", "alloc_bytes", "gc_collections")

    def __init__(self, name: str, attributes: Optional[Dict[str, object]] = None) -> None:
        super().__init__(name, attributes)
        self.cpu_s: float = 0.0
        self.alloc_bytes: int = 0
        self.gc_collections: int = 0

    def to_dict(self) -> Dict[str, object]:
        data = super().to_dict()
        data["cpu_s"] = self.cpu_s
        data["alloc_bytes"] = self.alloc_bytes
        data["gc_collections"] = self.gc_collections
        return data


class ProfilingSpanHandle(SpanHandle):
    """Times a span's wall clock *and* its resource deltas."""

    __slots__ = ("_cpu_at", "_alloc_at", "_gc_at")

    def __init__(self, owner, name: str, attributes: Optional[Dict[str, object]]) -> None:
        super().__init__(owner, name, attributes)
        self.record = ProfileSpanRecord(name, self.record.attributes or None)
        self._cpu_at = 0.0
        self._alloc_at = 0
        self._gc_at = 0

    def __enter__(self) -> "ProfilingSpanHandle":
        self._cpu_at = time.thread_time()
        self._alloc_at = tracemalloc.get_traced_memory()[0] if tracemalloc.is_tracing() else 0
        self._gc_at = _gc_collections()
        super().__enter__()
        return self

    def __exit__(self, *exc_info) -> None:
        record = self.record
        record.cpu_s = time.thread_time() - self._cpu_at
        if tracemalloc.is_tracing():
            record.alloc_bytes = tracemalloc.get_traced_memory()[0] - self._alloc_at
        record.gc_collections = _gc_collections() - self._gc_at
        super().__exit__(*exc_info)


class ProfilingTelemetry(Telemetry):
    """An enabled pipeline whose spans carry resource deltas.

    Same constructor contract as :class:`Telemetry`; additionally owns
    the tracemalloc lifecycle (started on construction if not already
    tracing, stopped by :meth:`close` only when this instance started
    it, so nested profiled sessions never pull tracing out from under
    each other).
    """

    profiling = True

    def __init__(
        self,
        exporters: Iterable[object] = (),
        registry: Optional[MetricsRegistry] = None,
        trace_allocations: bool = True,
    ) -> None:
        super().__init__(exporters=exporters, registry=registry)
        self._started_tracemalloc = False
        if trace_allocations and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True

    def span(self, name: str, **attributes: object) -> ProfilingSpanHandle:
        return ProfilingSpanHandle(self, name, attributes or None)

    def close(self) -> None:
        super().close()
        if self._started_tracemalloc:
            tracemalloc.stop()
            self._started_tracemalloc = False


# ----------------------------------------------------------------------
# self-vs-cumulative attribution
# ----------------------------------------------------------------------
def _cum_us(span: SpanRecord) -> int:
    """Cumulative wall microseconds with ``cum >= sum(child cums)``.

    Wall times are measured independently per span, so float jitter can
    make children sum to slightly more than their parent; flooring the
    parent at the children's total keeps every self value >= 0 and makes
    the collapsed-stack reconstruction exact.
    """
    children = sum(_cum_us(child) for child in span.children)
    return max(round(span.duration_s * 1e6), children)


def span_totals(roots: Iterable[SpanRecord]) -> Dict[str, Dict[str, object]]:
    """Aggregate self/cumulative attribution per span name.

    Returns ``{name: {"calls", "self_us", "cum_us", "cpu_us",
    "alloc_bytes", "gc_collections"}}``.  ``cum_us`` counts a name once
    per occurrence (a recursive name's cumulative time can exceed the
    root wall time, as in any profiler); ``self_us`` values across all
    names sum exactly to the roots' cumulative total.
    """
    totals: Dict[str, Dict[str, object]] = {}
    for root in roots:
        for span, _depth, _parent in iter_spans(root):
            cum = _cum_us(span)
            self_us = cum - sum(_cum_us(child) for child in span.children)
            entry = totals.setdefault(
                span.name,
                {
                    "calls": 0,
                    "self_us": 0,
                    "cum_us": 0,
                    "cpu_us": 0,
                    "alloc_bytes": 0,
                    "gc_collections": 0,
                },
            )
            entry["calls"] += 1
            entry["self_us"] += self_us
            entry["cum_us"] += cum
            if isinstance(span, ProfileSpanRecord):
                entry["cpu_us"] += round(span.cpu_s * 1e6)
                entry["alloc_bytes"] += span.alloc_bytes
                entry["gc_collections"] += span.gc_collections
    return totals


# ----------------------------------------------------------------------
# collapsed-stack (flamegraph) export
# ----------------------------------------------------------------------
def collapsed_stacks(roots: Iterable[SpanRecord]) -> Dict[str, int]:
    """Fold span trees into ``{"a;b;c": self_us}`` stacks.

    The weight of each stack line is the *self* time of its leaf frame,
    in integer microseconds — the convention of Brendan Gregg's
    ``flamegraph.pl`` collapsed format.  Stacks reaching the same path
    from different roots merge additively.
    """
    stacks: Dict[str, int] = {}

    def fold(span: SpanRecord, prefix: str) -> None:
        path = f"{prefix};{span.name}" if prefix else span.name
        self_us = _cum_us(span) - sum(_cum_us(child) for child in span.children)
        if self_us > 0:
            stacks[path] = stacks.get(path, 0) + self_us
        for child in span.children:
            fold(child, path)

    for root in roots:
        fold(root, "")
    return stacks


def format_collapsed(roots: Iterable[SpanRecord]) -> str:
    """Render collapsed stacks, one ``path weight`` line, sorted by path."""
    stacks = collapsed_stacks(roots)
    return "\n".join(f"{path} {weight}" for path, weight in sorted(stacks.items()))


def parse_collapsed(text: str) -> Dict[str, int]:
    """Parse :func:`format_collapsed` output back into ``{path: weight}``."""
    stacks: Dict[str, int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        path, _, weight = line.rpartition(" ")
        if not path:
            raise ValueError(f"malformed collapsed-stack line: {line!r}")
        stacks[path] = stacks.get(path, 0) + int(weight)
    return stacks


def totals_from_collapsed(stacks: Dict[str, int]) -> Dict[str, int]:
    """Reconstruct cumulative totals per path from collapsed stacks.

    The cumulative weight of a path is its own self weight plus every
    descendant path's self weight — exactly inverse to
    :func:`collapsed_stacks`, so for any span forest::

        totals_from_collapsed(collapsed_stacks(roots))[path]
            == cumulative microseconds of that path

    (modulo zero-self stack elision, which cumulative sums are
    insensitive to).
    """
    totals: Dict[str, int] = {}
    for path, weight in stacks.items():
        frames = path.split(";")
        for i in range(len(frames)):
            prefix = ";".join(frames[: i + 1])
            totals[prefix] = totals.get(prefix, 0) + weight
    return totals


# ----------------------------------------------------------------------
# hot-span report
# ----------------------------------------------------------------------
def hot_spans(
    roots: Iterable[SpanRecord], limit: int = 15
) -> List[Tuple[str, Dict[str, object]]]:
    """The ``limit`` hottest span names by self time, descending."""
    totals = span_totals(roots)
    ranked = sorted(totals.items(), key=lambda item: (-item[1]["self_us"], item[0]))
    return ranked[:limit]


def format_hot_spans(roots: Iterable[SpanRecord], limit: int = 15) -> str:
    """Table of the hottest spans: calls, self/cum wall, CPU, alloc, GC."""
    rows = hot_spans(roots, limit)
    header = (
        f"{'span':<42} {'calls':>6} {'self ms':>10} {'cum ms':>10} "
        f"{'cpu ms':>10} {'alloc KiB':>10} {'gc':>4}"
    )
    lines = [header, "-" * len(header)]
    for name, entry in rows:
        lines.append(
            f"{name:<42} {entry['calls']:>6} "
            f"{entry['self_us'] / 1e3:>10.2f} {entry['cum_us'] / 1e3:>10.2f} "
            f"{entry['cpu_us'] / 1e3:>10.2f} {entry['alloc_bytes'] / 1024:>10.1f} "
            f"{entry['gc_collections']:>4}"
        )
    return "\n".join(lines)


__all__ = [
    "ProfileSpanRecord",
    "ProfilingSpanHandle",
    "ProfilingTelemetry",
    "collapsed_stacks",
    "format_collapsed",
    "format_hot_spans",
    "hot_spans",
    "parse_collapsed",
    "span_totals",
    "totals_from_collapsed",
]

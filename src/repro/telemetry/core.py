"""The :class:`Telemetry` facade and its runtime-knob resolution chain.

``Telemetry`` bundles one :class:`~repro.telemetry.registry.MetricsRegistry`
with a span pipeline and its exporters.  It resolves exactly like every
other runtime knob — explicit argument → innermost active
:class:`repro.runtime.Session` → :data:`repro.runtime.defaults` →
:data:`NULL_TELEMETRY`, the disabled singleton.

The disabled path is a guard-and-return fast path: every instrumented
call site does ``tel = current_telemetry()`` followed by ``if
tel.enabled:`` and takes the un-instrumented branch otherwise — no
span objects, no attribute dicts, no registry lookups are ever built
when telemetry is off (pinned by the overhead row of
``benchmarks/bench_backends.py`` and the no-op tests).

This module imports only :mod:`repro._runtime_state`, so every layer —
including the low-level backends — can import it without cycles.
"""

from __future__ import annotations

import functools
import logging
import os
from typing import Callable, Iterable, Optional, Sequence

from repro._runtime_state import UNSET, current_effective, defaults, normalize_store_field
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.spans import (
    NULL_SPAN,
    InMemoryExporter,
    JSONLExporter,
    LoggingExporter,
    NullSpanHandle,
    SpanHandle,
    SpanRecord,
    current_span,
)


class Telemetry:
    """One telemetry pipeline: a metrics registry plus span exporters.

    Parameters
    ----------
    exporters:
        Objects with ``export(root_span)`` (and optionally ``close()``);
        each finished *root* span is handed to every exporter with its
        children attached.  Defaults to none — metrics-only pipelines
        are valid and cheap.
    registry:
        Share an existing :class:`MetricsRegistry` instead of building a
        private one (e.g. several sessions emitting into one sink).
    """

    enabled = True

    def __init__(
        self,
        exporters: Iterable[object] = (),
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.exporters = list(exporters)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} enabled={self.enabled} "
            f"exporters={[type(e).__name__ for e in self.exporters]}>"
        )

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: object) -> SpanHandle:
        """Open a nested wall-time span (use as a context manager)."""
        return SpanHandle(self, name, attributes or None)

    def current_span(self) -> Optional[SpanRecord]:
        """The innermost open span of this pipeline in the current context."""
        return current_span(self)

    def _export_root(self, root: SpanRecord) -> None:
        for exporter in self.exporters:
            exporter.export(root)

    def add_exporter(self, exporter: object) -> None:
        self.exporters.append(exporter)

    # ------------------------------------------------------------------
    # metric conveniences (mirror the registry, one call shorter)
    # ------------------------------------------------------------------
    def count(self, name: str, amount: int = 1) -> None:
        self.metrics.counter(name).add(amount)

    def observe(self, name: str, value: float, bounds: Optional[Sequence[float]] = None):
        self.metrics.histogram(name, bounds).observe(value)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name).set(value)

    def snapshot(self):
        return self.metrics.snapshot()

    def close(self) -> None:
        """Close every exporter that supports it (flushes JSONL files)."""
        for exporter in self.exporters:
            close = getattr(exporter, "close", None)
            if close is not None:
                close()


class NullTelemetry(Telemetry):
    """The disabled singleton: every operation is a no-op.

    ``span()`` returns the one shared :data:`~repro.telemetry.spans.NULL_SPAN`
    (no record, no attribute dict); the metric methods return without
    touching the (empty, shared) registry.  Instrumented call sites
    additionally guard on :attr:`enabled`, so the disabled path never
    even builds the keyword arguments.
    """

    enabled = False

    def span(self, name: str, **attributes: object) -> NullSpanHandle:  # type: ignore[override]
        return NULL_SPAN

    def count(self, name: str, amount: int = 1) -> None:
        return None

    def observe(self, name, value, bounds=None) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def _export_root(self, root: SpanRecord) -> None:  # pragma: no cover - unreachable
        return None


#: The process-wide disabled pipeline every resolution falls back to.
NULL_TELEMETRY = NullTelemetry()


# ----------------------------------------------------------------------
# resolution chain
# ----------------------------------------------------------------------
def telemetry_from_spec(spec: object) -> Telemetry:
    """Normalize a raw telemetry spec into a live :class:`Telemetry`.

    ``True`` → an enabled metrics-only pipeline; ``"log"`` → the stdlib
    logging bridge; any other string → a :class:`JSONLExporter` writing
    to that path.  Instances pass through.  This is what the defaults
    store and the ``REPRO_TELEMETRY`` environment hook accept.
    """
    if isinstance(spec, Telemetry):
        return spec
    if spec is True:
        return Telemetry()
    if isinstance(spec, (str, os.PathLike)):
        if spec == "log":
            return Telemetry(exporters=[LoggingExporter()])
        return Telemetry(exporters=[JSONLExporter(spec)])
    raise TypeError(f"cannot interpret {spec!r} as a telemetry spec")


def _needs_normalize(stored: object) -> bool:
    return stored is not None and not isinstance(stored, Telemetry)


def get_default_telemetry() -> Telemetry:
    """Resolve the ambient pipeline: session → defaults → disabled.

    Raw specs assigned to ``repro.runtime.defaults.telemetry`` (``True``,
    a JSONL path, ``"log"``) are normalized into a live pipeline exactly
    once, under the shared store lock.
    """
    effective = current_effective()
    if effective is not None:
        value = getattr(effective, "telemetry", UNSET)
        if value is not UNSET:
            return value if value is not None else NULL_TELEMETRY
    stored = normalize_store_field("telemetry", _needs_normalize, telemetry_from_spec)
    return stored if stored is not None else NULL_TELEMETRY


#: Alias used by the instrumented call sites: ``tel = current_telemetry()``.
current_telemetry = get_default_telemetry


def resolve_telemetry(spec: object) -> Telemetry:
    """Resolve an explicit argument through the documented chain.

    ``None`` → ambient (session → defaults → disabled); ``False`` →
    :data:`NULL_TELEMETRY` (explicitly off, even inside an enabled
    scope); ``True`` / path / instance → a live pipeline.
    """
    if spec is None:
        return get_default_telemetry()
    if spec is False:
        return NULL_TELEMETRY
    return telemetry_from_spec(spec)


def traced(name: str, **attributes: object) -> Callable:
    """Decorator form of ``telemetry.span``: resolves the pipeline per call.

    The wrapped function costs one contextvar read when telemetry is
    disabled::

        @traced("service.rebalance")
        def rebalance(...): ...
    """

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tel = get_default_telemetry()
            if not tel.enabled:
                return fn(*args, **kwargs)
            with tel.span(name, **attributes):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def install_env_telemetry(environ=os.environ) -> None:
    """Install a process-wide default pipeline from ``REPRO_TELEMETRY``.

    Values: ``1``/``true``/``on`` → metrics-only, ``log`` → the logging
    bridge, anything else → a JSONL trace file at that path.  A default
    already assigned (or an unset/empty variable) wins — the hook never
    overwrites explicit configuration.  Called once at package import so
    any entry point (pytest, CLI, server) can be traced without code
    changes; the CI ``telemetry-smoke`` job runs the tier-1 suite under
    ``REPRO_TELEMETRY=trace.jsonl`` to prove instrumentation never
    changes results.
    """
    raw = environ.get("REPRO_TELEMETRY", "").strip()
    if not raw or defaults.telemetry is not None:
        return
    if raw.lower() in ("0", "false", "off"):
        return
    if raw.lower() in ("1", "true", "on"):
        defaults.telemetry = Telemetry()
    else:
        defaults.telemetry = telemetry_from_spec(raw)


__all__ = [
    "NULL_TELEMETRY",
    "InMemoryExporter",
    "JSONLExporter",
    "LoggingExporter",
    "MetricsRegistry",
    "NullTelemetry",
    "Telemetry",
    "current_telemetry",
    "get_default_telemetry",
    "install_env_telemetry",
    "resolve_telemetry",
    "telemetry_from_spec",
    "traced",
]

"""Span-based tracing: nested wall-time spans plus pluggable exporters.

A span measures one monotonic wall-time interval
(:func:`time.perf_counter`) under a dotted name mirroring the metric
namespace (``engine.sample_worlds``, ``service.evaluate``, ...).  Spans
nest through a :class:`contextvars.ContextVar`, so nesting is correct
across threads and asyncio tasks: a span opened inside another span *of
the same telemetry pipeline* becomes its child; when the outermost span
closes, the finished tree is handed to every exporter.

Exporters are deliberately tiny:

* :class:`InMemoryExporter` — keeps finished root spans in a list
  (tests, and the CLI's span-tree printout);
* :class:`JSONLExporter` — appends one JSON object per span
  (depth-first, with ``span_id``/``parent_id``) to a file;
* :class:`LoggingExporter` — bridges finished spans onto a stdlib
  :mod:`logging` logger.
"""

from __future__ import annotations

import io
import json
import logging
import threading
import time
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional, Tuple


class SpanRecord:
    """One finished (or in-flight) span: name, attributes, timing, children."""

    __slots__ = ("name", "attributes", "started_at", "duration_s", "children")

    def __init__(self, name: str, attributes: Optional[Dict[str, object]] = None) -> None:
        self.name = name
        self.attributes: Dict[str, object] = attributes or {}
        self.started_at = time.perf_counter()
        self.duration_s: float = 0.0
        self.children: List["SpanRecord"] = []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SpanRecord {self.name} {self.duration_s * 1e3:.3f}ms "
            f"children={len(self.children)}>"
        )

    def to_dict(self) -> Dict[str, object]:
        """Recursive JSON-safe rendering (children nested)."""
        return {
            "name": self.name,
            "attributes": dict(self.attributes),
            "duration_s": self.duration_s,
            "children": [child.to_dict() for child in self.children],
        }


def iter_spans(
    root: SpanRecord,
) -> Iterator[Tuple[SpanRecord, int, Optional[SpanRecord]]]:
    """Depth-first ``(span, depth, parent)`` walk over one span tree."""
    stack: List[Tuple[SpanRecord, int, Optional[SpanRecord]]] = [(root, 0, None)]
    while stack:
        span, depth, parent = stack.pop()
        yield span, depth, parent
        for child in reversed(span.children):
            stack.append((child, depth + 1, span))


def format_span_tree(root: SpanRecord) -> str:
    """Render one span tree with durations and share-of-root percentages.

    The per-layer durations of the children visibly sum to (almost all
    of) the parent's wall time; the residue is the parent's own work.
    """
    total = root.duration_s or 1e-12
    lines: List[str] = []

    def emit(span: SpanRecord, prefix: str, child_prefix: str) -> None:
        attrs = ""
        if span.attributes:
            rendered = ", ".join(f"{k}={v}" for k, v in sorted(span.attributes.items()))
            attrs = f"  {{{rendered}}}"
        lines.append(
            f"{prefix}{span.name:<{max(1, 46 - len(prefix))}} "
            f"{span.duration_s * 1e3:>10.2f} ms  {span.duration_s / total * 100:>5.1f}%"
            f"{attrs}"
        )
        for i, child in enumerate(span.children):
            last = i == len(span.children) - 1
            emit(
                child,
                child_prefix + ("└─ " if last else "├─ "),
                child_prefix + ("   " if last else "│  "),
            )

    emit(root, "", "")
    return "\n".join(lines)


#: The innermost open span of the current thread/task, tagged with the
#: telemetry pipeline that opened it (spans never attach across
#: pipelines).  Module-level — not per-Telemetry — so long-lived threads
#: do not accumulate dead ContextVars (they can never be removed from a
#: Context).
_CURRENT_SPAN: ContextVar[Optional[Tuple[object, SpanRecord]]] = ContextVar(
    "repro_current_span", default=None
)


def current_span(owner: object) -> Optional[SpanRecord]:
    """The innermost open span belonging to ``owner``'s pipeline, if any."""
    entry = _CURRENT_SPAN.get()
    if entry is not None and entry[0] is owner:
        return entry[1]
    return None


class SpanHandle:
    """Context manager for one span: times it, nests it, exports roots.

    Returned by ``Telemetry.span(name, **attrs)``; also usable via
    :meth:`set` to attach attributes discovered mid-span (sample counts,
    cache verdicts, ...).
    """

    __slots__ = ("_owner", "record", "_token")

    def __init__(self, owner, name: str, attributes: Optional[Dict[str, object]]) -> None:
        self._owner = owner
        self.record = SpanRecord(name, attributes)
        self._token = None

    def set(self, **attributes: object) -> "SpanHandle":
        self.record.attributes.update(attributes)
        return self

    def __enter__(self) -> "SpanHandle":
        self.record.started_at = time.perf_counter()
        self._token = _CURRENT_SPAN.set((self._owner, self.record))
        return self

    def __exit__(self, *exc_info) -> None:
        self.record.duration_s = time.perf_counter() - self.record.started_at
        token, self._token = self._token, None
        if token is not None:
            _CURRENT_SPAN.reset(token)
        outer = _CURRENT_SPAN.get()
        if outer is not None and outer[0] is self._owner:
            outer[1].children.append(self.record)
        else:
            self._owner._export_root(self.record)


class NullSpanHandle:
    """The shared no-op span of disabled telemetry: enter/exit do nothing."""

    __slots__ = ()

    def set(self, **attributes: object) -> "NullSpanHandle":
        return self

    def __enter__(self) -> "NullSpanHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


NULL_SPAN = NullSpanHandle()


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
class InMemoryExporter:
    """Collects finished root spans in memory (tests + CLI printouts)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.spans: List[SpanRecord] = []

    def export(self, root: SpanRecord) -> None:
        with self._lock:
            self.spans.append(root)

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()

    def close(self) -> None:  # symmetry with the file exporter
        pass


class JSONLExporter:
    """Appends one JSON object per span (depth-first) to a file.

    Lines carry ``span_id``/``parent_id`` (per-exporter sequential ints)
    so the tree round-trips; every root-span export is flushed, so the
    file is useful even for runs that never close cleanly.
    """

    def __init__(self, path) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._handle: Optional[io.TextIOBase] = None
        self._next_id = 0

    def export(self, root: SpanRecord) -> None:
        lines: List[str] = []
        with self._lock:
            ids: Dict[int, int] = {}
            for span, _depth, parent in iter_spans(root):
                span_id = self._next_id
                self._next_id += 1
                ids[id(span)] = span_id
                lines.append(
                    json.dumps(
                        {
                            "span_id": span_id,
                            "parent_id": None if parent is None else ids[id(parent)],
                            "name": span.name,
                            "duration_s": span.duration_s,
                            "attributes": {
                                k: repr(v)
                                if not isinstance(v, (str, int, float, bool, type(None)))
                                else v
                                for k, v in span.attributes.items()
                            },
                        },
                        sort_keys=True,
                    )
                )
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write("\n".join(lines) + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


class LoggingExporter:
    """Bridges finished spans onto a stdlib :mod:`logging` logger."""

    def __init__(self, logger: Optional[logging.Logger] = None, level: int = logging.INFO):
        self.logger = logger if logger is not None else logging.getLogger("repro.telemetry")
        self.level = level

    def export(self, root: SpanRecord) -> None:
        if not self.logger.isEnabledFor(self.level):
            return
        for span, depth, _parent in iter_spans(root):
            self.logger.log(
                self.level,
                "span %s%s %.3f ms %s",
                "  " * depth,
                span.name,
                span.duration_s * 1e3,
                span.attributes or "",
            )

    def close(self) -> None:
        pass

"""``repro.telemetry`` — the unified observability layer.

One :class:`MetricsRegistry` (thread-safe counters / gauges /
fixed-bucket histograms) plus span-based tracing with pluggable
exporters, resolved like every other runtime knob: explicit argument →
active :class:`repro.runtime.Session` → ``repro.runtime.defaults`` →
:data:`NULL_TELEMETRY` (disabled, all no-ops).  Every hot path of the
stack — engine sampling, the CSR backend's dense/sparse round mix, the
process-pool executor, the world/layout caches, the batch service and
the server — emits through the resolved pipeline, so one snapshot
explains where a query's time went.

Enable per scope::

    import repro
    from repro.telemetry import Telemetry, InMemoryExporter

    tel = Telemetry(exporters=[InMemoryExporter()])
    with repro.session(telemetry=tel) as s:
        s.expected_flow(graph, query, n_samples=1000)
    print(tel.snapshot()["counters"])          # engine.*, cache.*, ...

or process-wide via ``repro.runtime.defaults.telemetry = True`` (raw
specs — ``True``, a JSONL path, ``"log"`` — are normalized lazily), or
without touching code via the ``REPRO_TELEMETRY`` environment variable.

On the CLI: ``--trace`` / ``--trace-out`` on the workload subcommands,
and ``repro-flow telemetry`` runs a workload and dumps the registry and
the span tree.
"""

from repro.telemetry.core import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    current_telemetry,
    get_default_telemetry,
    install_env_telemetry,
    resolve_telemetry,
    telemetry_from_spec,
    traced,
)
from repro.telemetry.registry import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.spans import (
    InMemoryExporter,
    JSONLExporter,
    LoggingExporter,
    SpanRecord,
    format_span_tree,
    iter_spans,
)

#: ``REPRO_TELEMETRY=<path|log|1>`` installs a process-wide default
#: pipeline at import time (never overwriting explicit configuration).
install_env_telemetry()

__all__ = [
    "Counter",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "InMemoryExporter",
    "JSONLExporter",
    "LoggingExporter",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "SpanRecord",
    "Telemetry",
    "current_telemetry",
    "format_span_tree",
    "get_default_telemetry",
    "install_env_telemetry",
    "iter_spans",
    "resolve_telemetry",
    "telemetry_from_spec",
    "traced",
]

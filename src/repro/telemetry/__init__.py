"""``repro.telemetry`` — the unified observability layer.

One :class:`MetricsRegistry` (thread-safe counters / gauges /
fixed-bucket histograms) plus span-based tracing with pluggable
exporters, resolved like every other runtime knob: explicit argument →
active :class:`repro.runtime.Session` → ``repro.runtime.defaults`` →
:data:`NULL_TELEMETRY` (disabled, all no-ops).  Every hot path of the
stack — engine sampling, the CSR backend's dense/sparse round mix, the
process-pool executor, the world/layout caches, the batch service and
the server — emits through the resolved pipeline, so one snapshot
explains where a query's time went.

Enable per scope::

    import repro
    from repro.telemetry import Telemetry, InMemoryExporter

    tel = Telemetry(exporters=[InMemoryExporter()])
    with repro.session(telemetry=tel) as s:
        s.expected_flow(graph, query, n_samples=1000)
    print(tel.snapshot()["counters"])          # engine.*, cache.*, ...

or process-wide via ``repro.runtime.defaults.telemetry = True`` (raw
specs — ``True``, a JSONL path, ``"log"`` — are normalized lazily), or
without touching code via the ``REPRO_TELEMETRY`` environment variable.

On the CLI: ``--trace`` / ``--trace-out`` / ``--profile`` on the
workload subcommands, and ``repro-flow telemetry`` runs a workload and
dumps the registry and the span tree.

Two optional companions build on this core:

* :mod:`repro.telemetry.profile` — opt-in resource profiling
  (:class:`ProfilingTelemetry`): per-span CPU/allocation/GC deltas,
  self-vs-cumulative attribution, collapsed-stack (flamegraph) export;
* :mod:`repro.telemetry.expo` — Prometheus-text exposition of registry
  snapshots, the ``/metrics`` HTTP scrape endpoint, and windowed rates.
"""

from repro.telemetry.core import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    current_telemetry,
    get_default_telemetry,
    install_env_telemetry,
    resolve_telemetry,
    telemetry_from_spec,
    traced,
)
from repro.telemetry.expo import (
    MetricsHTTPServer,
    WindowRates,
    render_registry,
    render_server_text,
    sanitize_metric_name,
)
from repro.telemetry.profile import (
    ProfileSpanRecord,
    ProfilingTelemetry,
    collapsed_stacks,
    format_collapsed,
    format_hot_spans,
    hot_spans,
    parse_collapsed,
    span_totals,
    totals_from_collapsed,
)
from repro.telemetry.registry import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_quantile,
)
from repro.telemetry.spans import (
    InMemoryExporter,
    JSONLExporter,
    LoggingExporter,
    SpanRecord,
    format_span_tree,
    iter_spans,
)

#: ``REPRO_TELEMETRY=<path|log|1>`` installs a process-wide default
#: pipeline at import time (never overwriting explicit configuration).
install_env_telemetry()

__all__ = [
    "Counter",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "InMemoryExporter",
    "JSONLExporter",
    "LoggingExporter",
    "MetricsHTTPServer",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "ProfileSpanRecord",
    "ProfilingTelemetry",
    "SpanRecord",
    "Telemetry",
    "WindowRates",
    "bucket_quantile",
    "collapsed_stacks",
    "current_telemetry",
    "format_collapsed",
    "format_hot_spans",
    "format_span_tree",
    "get_default_telemetry",
    "hot_spans",
    "install_env_telemetry",
    "iter_spans",
    "parse_collapsed",
    "render_registry",
    "render_server_text",
    "resolve_telemetry",
    "sanitize_metric_name",
    "span_totals",
    "telemetry_from_spec",
    "totals_from_collapsed",
    "traced",
]

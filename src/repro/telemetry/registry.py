"""Thread-safe metrics registry: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` instance is the single sink every
instrumented layer (engine, executor, caches, service, server) emits
into, so a snapshot shows the whole stack at once instead of the three
disconnected ad-hoc dicts it replaces.  Instruments are created lazily
by name (``registry.counter("engine.worlds_sampled")``) and are
per-instrument locked, so concurrent updates from threads *and* asyncio
tasks are exact — no torn reads, no lost increments (pinned by
``tests/test_telemetry.py``).

Naming convention: dotted ``<layer>.<thing>`` paths mirroring the span
names — ``engine.*``, ``executor.*``, ``cache.world.*``,
``cache.layout.*``, ``service.*``, ``server.*``.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds for durations, in seconds
#: (100µs .. 30s, roughly exponential).  The overflow bucket is implicit.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)

#: Default buckets for sizes/counts (batch sizes, group sizes, ...).
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def bucket_quantile(
    bounds: Sequence[float],
    counts: Sequence[int],
    count: int,
    lo: float,
    hi: float,
    q: float,
) -> Optional[float]:
    """Linear-interpolated quantile from per-bucket counts.

    ``counts`` has one entry per bound plus the trailing overflow bucket;
    ``lo``/``hi`` are the exact observed min/max used to clamp the
    interpolated estimate (and to resolve the first and overflow buckets,
    which have no finite lower/upper bound of their own).
    """
    if count == 0:
        return None
    target = q * count
    cumulative = 0
    for i, bound in enumerate(bounds):
        bucket_count = counts[i]
        if bucket_count == 0:
            cumulative += bucket_count
            continue
        if cumulative + bucket_count >= target:
            lower = bounds[i - 1] if i > 0 else min(lo, bound)
            estimate = lower + (target - cumulative) / bucket_count * (bound - lower)
            return min(max(estimate, lo), hi)
        cumulative += bucket_count
    # target rank lands in the overflow bucket: no finite upper bound to
    # interpolate against, so report the exact maximum
    return hi


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def add(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max.

    ``bounds`` are inclusive upper bounds; one implicit overflow bucket
    catches everything above the last bound.  Bucket layout is fixed at
    creation, so merging snapshots across processes stays well-defined.
    """

    __slots__ = ("name", "bounds", "_lock", "_counts", "_sum", "_count", "_min", "_max")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_TIME_BUCKETS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted and non-empty, got {bounds!r}")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from the buckets.

        Linear interpolation inside the bucket holding the target rank —
        the same estimate ``histogram_quantile`` computes in PromQL —
        clamped to the exactly tracked ``[min, max]`` so small samples
        cannot report a value outside what was observed.  ``None`` on an
        empty histogram.  Observations in the overflow bucket resolve to
        the exact maximum (there is no upper bound to interpolate
        against).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        with self._lock:
            counts = list(self._counts)
            count = self._count
            lo, hi = self._min, self._max
        return bucket_quantile(self.bounds, counts, count, lo, hi, q)

    def summary(self) -> Dict[str, object]:
        """JSON-safe snapshot: count/sum/mean/min/max plus bucket counts."""
        with self._lock:
            count, total = self._count, self._sum
            counts = list(self._counts)
            lo, hi = self._min, self._max
        buckets = [
            {"le": bound, "count": counts[i]} for i, bound in enumerate(self.bounds)
        ]
        buckets.append({"le": None, "count": counts[-1]})  # overflow
        return {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else None,
            "min": lo if count else None,
            "max": hi if count else None,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Named instrument store shared by every instrumented layer.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create by name; asking
    for an existing name as a different instrument kind raises, so two
    layers cannot silently write incompatible data under one name.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, object] = {}

    def _get_or_create(self, name: str, kind, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(name)
                if instrument is None:
                    instrument = factory()
                    self._instruments[name] = instrument
        if not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} is already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        chosen = DEFAULT_TIME_BUCKETS if bounds is None else bounds
        return self._get_or_create(name, Histogram, lambda: Histogram(name, chosen))

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """One JSON-safe dict of every instrument, grouped by kind."""
        with self._lock:
            instruments = dict(self._instruments)
        counters: Dict[str, object] = {}
        gauges: Dict[str, object] = {}
        histograms: Dict[str, object] = {}
        for name in sorted(instruments):
            instrument = instruments[name]
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.value
            elif isinstance(instrument, Histogram):
                histograms[name] = instrument.summary()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def reset(self) -> None:
        """Drop every instrument (tests and long-lived servers)."""
        with self._lock:
            self._instruments.clear()

"""Internal state behind :mod:`repro.runtime`: defaults store + active session.

This module is deliberately dependency-free (it imports nothing from the
rest of the library) so that the low-level configuration points — the
backend registry, the shard planner, the executor factory, the selection
registry and the world cache — can consult it without import cycles.
User-facing API lives in :mod:`repro.runtime`; nothing here is public.

Two pieces of state live here:

* :data:`defaults` — the **one** process-wide fallback store.  Each field
  is ``None`` until something assigns it, meaning "use the library's
  built-in default".  The five legacy ``set_default_*`` functions are
  deprecation shims writing into this store.
* the **active session** — a :class:`contextvars.ContextVar` holding the
  innermost :class:`repro.runtime.Session` activation.  Contextvars make
  scoping both thread-safe and ``asyncio``-safe: a session entered in one
  thread (or task) is invisible to every other, and nested activations
  restore the previous one exactly.

Resolution order for every knob is therefore: explicit call argument →
innermost active session (already merged over its parents at activation
time) → :data:`defaults` → built-in library default.
"""

from __future__ import annotations

import threading
import warnings
from contextvars import ContextVar, Token
from typing import Any, Callable, Optional

#: Sentinel for "this activation does not pin the knob — fall through to
#: the process-wide defaults store".  Distinct from ``None`` because
#: ``None`` is meaningful for some knobs (executor ``None`` = unsharded,
#: world cache ``None`` = caching disabled).
UNSET: Any = type("_Unset", (), {"__repr__": lambda self: "<UNSET>"})()


class RuntimeDefaults:
    """The process-wide fallback configuration store.

    Every field is ``None`` until assigned; ``None`` means "defer to the
    library's built-in default" (``vectorized`` backend, CRN scoring on,
    unsharded sampling, 256-world shards, lazily created shared world
    cache).  Assign fields directly (``repro.runtime.defaults.backend =
    "naive"``) for an undeprecated process-wide override, or use a scoped
    :func:`repro.session` — which always wins over this store.

    Values are validated where they are consumed (e.g. an unknown backend
    name raises at the next ``make_backend`` resolution), mirroring how
    the legacy globals behaved for out-of-band assignments.
    """

    __slots__ = ("backend", "crn", "executor", "shard_size", "world_cache", "telemetry")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Restore the pristine state (every knob back to built-in defaults).

        Does not close a previously stored executor or clear a stored
        cache — the store never owns resources, callers do.
        """
        self.backend: Optional[str] = None
        self.crn: Optional[bool] = None
        self.executor: Optional[object] = None
        self.shard_size: Optional[int] = None
        self.world_cache: Optional[object] = None
        self.telemetry: Optional[object] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fields = ", ".join(f"{name}={getattr(self, name)!r}" for name in self.__slots__)
        return f"<RuntimeDefaults {fields}>"


#: The one process-wide defaults store (see :class:`RuntimeDefaults`).
defaults = RuntimeDefaults()

_STORE_LOCK = threading.Lock()


def resolve_field(field: str, builtin: Any) -> Any:
    """Resolve one knob through the documented chain, in one place.

    Innermost active session (merged view) → ``defaults.<field>`` →
    ``builtin``.  The shared implementation guarantees every knob follows
    the same resolution order.
    """
    effective = current_effective()
    if effective is not None:
        value = getattr(effective, field)
        if value is not UNSET:
            return value
    stored = getattr(defaults, field)
    return stored if stored is not None else builtin


def normalize_store_field(
    field: str,
    needs_normalize: Callable[[Any], bool],
    normalize: Callable[[Any], Any],
) -> Any:
    """Read ``defaults.<field>``, normalizing raw specs once under one lock.

    The store accepts whatever users assign (worker counts, cache entry
    bounds, ...); the resolution points turn such raw specs into live
    objects exactly once and pin the result back, double-checked under a
    shared lock so concurrent first resolutions cannot build duplicate
    resources (e.g. two process pools from one ``defaults.executor = 4``).
    """
    stored = getattr(defaults, field)
    if needs_normalize(stored):
        with _STORE_LOCK:
            stored = getattr(defaults, field)
            if needs_normalize(stored):
                stored = normalize(stored)
                setattr(defaults, field, stored)
    return stored


class EffectiveConfig:
    """One activation's merged view of the session-scoped knobs.

    Built by :meth:`repro.runtime.Session` activation from its own
    :class:`~repro.runtime.RuntimeConfig` merged over the enclosing
    activation; fields the whole session chain leaves unset stay
    :data:`UNSET` and resolution falls through to :data:`defaults`.
    ``executor`` and ``world_cache`` hold *resolved* objects (or ``None``
    for "explicitly unsharded"/"caching disabled"), never raw specs, and
    ``telemetry`` holds a resolved ``repro.telemetry.Telemetry`` pipeline
    (the disabled singleton when a session pins telemetry off).
    The ambient knobs are what the library-wide ``get_default_*``
    resolution points consult; ``n_samples``, ``adaptive`` and ``seed``
    are the call-policy fields only Session methods read — carried here
    so nested sessions inherit them too.
    """

    __slots__ = (
        "backend",
        "crn",
        "executor",
        "shard_size",
        "world_cache",
        "telemetry",
        "n_samples",
        "adaptive",
        "seed",
    )

    def __init__(
        self,
        backend: Any = UNSET,
        crn: Any = UNSET,
        executor: Any = UNSET,
        shard_size: Any = UNSET,
        world_cache: Any = UNSET,
        telemetry: Any = UNSET,
        n_samples: Any = UNSET,
        adaptive: Any = UNSET,
        seed: Any = UNSET,
    ) -> None:
        self.backend = backend
        self.crn = crn
        self.executor = executor
        self.shard_size = shard_size
        self.world_cache = world_cache
        self.telemetry = telemetry
        self.n_samples = n_samples
        self.adaptive = adaptive
        self.seed = seed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fields = ", ".join(f"{name}={getattr(self, name)!r}" for name in self.__slots__)
        return f"<EffectiveConfig {fields}>"


class _Activation:
    """One entry of the session stack: the session plus its merged view."""

    __slots__ = ("session", "effective")

    def __init__(self, session: object, effective: EffectiveConfig) -> None:
        self.session = session
        self.effective = effective


_ACTIVE: ContextVar[Optional[_Activation]] = ContextVar("repro_active_session", default=None)


def current_session() -> Optional[object]:
    """Return the innermost active :class:`repro.runtime.Session`, if any."""
    activation = _ACTIVE.get()
    return None if activation is None else activation.session


def current_effective() -> Optional[EffectiveConfig]:
    """Return the innermost activation's merged knob view, if any."""
    activation = _ACTIVE.get()
    return None if activation is None else activation.effective


def activate(session: object, effective: EffectiveConfig) -> Token:
    """Push a session activation; returns the token that restores the prior one."""
    return _ACTIVE.set(_Activation(session, effective))


def deactivate(token: Token) -> None:
    """Pop a session activation, restoring exactly the enclosing state."""
    _ACTIVE.reset(token)


# One context-local stack of (session, token) pairs for Session's
# ``with`` protocol.  A single module-level ContextVar — rather than one
# per Session instance — keeps a long-lived thread's Context from
# accumulating an unbounded set of dead ContextVar entries as sessions
# come and go (ContextVars can never be removed from a Context).
_ENTRY_STACK: ContextVar[tuple] = ContextVar("repro_session_entry_stack", default=())


def push_entry(session: object, token: Token) -> None:
    """Record a ``with session:`` entry in the current context."""
    _ENTRY_STACK.set(_ENTRY_STACK.get() + ((session, token),))


def pop_entry(session: object) -> Token:
    """Pop the current context's innermost entry, which must be ``session``.

    ``with`` blocks are well-nested per context, so the top of the stack
    always belongs to the session being exited; anything else means the
    session was never entered in this context (e.g. entered in one
    thread, exited in another).
    """
    stack = _ENTRY_STACK.get()
    if not stack or stack[-1][0] is not session:
        raise RuntimeError("this Session is not active in the current context")
    _ENTRY_STACK.set(stack[:-1])
    return stack[-1][1]


def warn_deprecated(old: str, replacement: str) -> None:
    """Emit the shared migration warning for a legacy ``set_default_*`` call.

    ``stacklevel=3`` points the warning at the *caller* of the shim (one
    level for this helper, one for the shim itself).
    """
    warnings.warn(
        f"{old} is deprecated and will be removed in a future release; "
        f"{replacement}",
        DeprecationWarning,
        stacklevel=3,
    )

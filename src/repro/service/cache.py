"""Digest-keyed LRU cache of sampled world batches.

The dominant cost of every Monte-Carlo answer is drawing and propagating
the possible worlds; the aggregation afterwards is a column gather.  A
:class:`WorldCache` therefore caches the :class:`~repro.reachability.engine.WorldBatch`
itself, keyed by a stable digest of everything the batch is a pure
function of:

* the **graph content** (vertices, weights, ordered edge/probability
  sequence — :func:`repro.digest.graph_digest`),
* the **edge restriction** in order (:func:`repro.digest.edge_sequence_digest`),
* the **source vertex**, the **backend**, the integer **seed**, the
  **sample count**, and the **shard plan** (``None`` for the unsharded
  stream, else the shard size — worker count is deliberately absent,
  it never changes a bit).

Content addressing makes invalidation automatic for correctness: any
graph mutation moves the graph digest, so stale entries can never be
*hit* — :meth:`WorldCache.invalidate_graph` exists to reclaim their
memory eagerly (and to make the invalidation observable in stats).

Weight-only mutations also move the digest even though they leave the
sampled worlds valid (weights enter at aggregation time).  That is a
deliberate trade: the cache key stays one digest of the full graph
content, and a weight edit can never serve a stale flow number.
"""

from __future__ import annotations

import logging
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Set, Union

from repro._runtime_state import (
    UNSET,
    current_effective,
    defaults as _runtime_defaults,
    normalize_store_field,
    warn_deprecated,
)
from repro.digest import combine_digests, graph_digest
from repro.reachability.engine import WorldBatch
from repro.reachability.layout import invalidate_graph_layouts
from repro.telemetry import current_telemetry

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class WorldKey:
    """Everything a cached world batch is a pure function of.

    ``source_repr`` carries the source vertex as its ``repr`` so the key
    hashes stably across processes (vertex ids are arbitrary hashables);
    ``shard_size`` is ``None`` for the unsharded historical stream and
    the resolved shard size when an executor is active — the two streams
    differ, so they must not share entries.
    """

    graph_digest: int
    edges_digest: Optional[int]
    source_repr: str
    backend: str
    seed: int
    n_samples: int
    shard_size: Optional[int]

    @property
    def digest(self) -> int:
        """Stable 128-bit digest of the full key."""
        return combine_digests(
            "world",
            self.graph_digest,
            self.edges_digest,
            self.source_repr,
            self.backend,
            self.seed,
            self.n_samples,
            self.shard_size,
        )


class WorldCache:
    """Bounded LRU cache of sampled world batches with hit/miss/eviction stats.

    Parameters
    ----------
    max_entries:
        Maximum number of cached batches; the least recently used entry
        is evicted beyond that.  ``None`` disables eviction.

    All operations are thread-safe (one internal lock): a cache shared
    by concurrent evaluators — e.g. through one long-lived
    :func:`repro.session` serving several request threads — keeps its
    LRU order and statistics consistent.
    """

    def __init__(self, max_entries: Optional[int] = 64) -> None:
        if max_entries is not None and max_entries <= 0:
            raise ValueError(f"max_entries must be positive or None, got {max_entries!r}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[int, tuple[WorldKey, WorldBatch]]" = OrderedDict()
        self._by_graph: Dict[int, Set[int]] = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<WorldCache entries={len(self._entries)}"
            f"/{self.max_entries} hits={self.hits} misses={self.misses}>"
        )

    #: registry namespace the cache's stats are re-emitted under; the
    #: structurally identical LayoutCache overrides it (see
    #: :mod:`repro.reachability.layout`)
    _metric_prefix = "cache.world"

    # ------------------------------------------------------------------
    def get(self, key: WorldKey) -> Optional[WorldBatch]:
        """Return the cached batch for ``key`` (counting a hit or miss)."""
        with self._lock:
            entry = self._entries.get(key.digest)
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
                self._entries.move_to_end(key.digest)
        # re-emit through the ambient registry outside the lock: the
        # stats() dict stays the canonical per-instance view, the
        # registry aggregates across instances and layers
        tel = current_telemetry()
        if tel.enabled:
            tel.count(f"{self._metric_prefix}.{'misses' if entry is None else 'hits'}")
        return None if entry is None else entry[1]

    def put(self, key: WorldKey, batch: WorldBatch) -> None:
        """Store ``batch`` under ``key``, evicting the LRU entry if needed."""
        digest = key.digest
        evicted = False
        with self._lock:
            self._entries[digest] = (key, batch)
            self._entries.move_to_end(digest)
            self._by_graph.setdefault(key.graph_digest, set()).add(digest)
            if self.max_entries is not None and len(self._entries) > self.max_entries:
                evicted_digest, (evicted_key, _) = self._entries.popitem(last=False)
                self._drop_graph_index(evicted_key.graph_digest, evicted_digest)
                self.evictions += 1
                evicted = True
            entries = len(self._entries)
        tel = current_telemetry()
        if tel.enabled:
            tel.count(f"{self._metric_prefix}.puts")
            if evicted:
                tel.count(f"{self._metric_prefix}.evictions")
            tel.gauge(f"{self._metric_prefix}.entries", entries)

    def _drop_graph_index(self, graph_key: int, digest: int) -> None:
        members = self._by_graph.get(graph_key)
        if members is not None:
            members.discard(digest)
            if not members:
                del self._by_graph[graph_key]

    # ------------------------------------------------------------------
    def invalidate_graph(self, graph_or_digest: Union[int, object]) -> int:
        """Drop every batch sampled from the given graph content.

        Accepts either an :class:`~repro.graph.uncertain_graph.UncertainGraph`
        (its current content digest is computed) or a digest previously
        obtained from :func:`repro.digest.graph_digest` — useful to
        reclaim entries for the *pre-mutation* content, since mutating a
        graph moves its digest.  The default
        :class:`~repro.reachability.layout.LayoutCache` is invalidated
        for the same content in the same call, so interned graph layouts
        are reclaimed from the one mutation path the service exposes.
        Returns the number of dropped world batches (layout drops are
        visible in the layout cache's own stats).
        """
        digest = (
            graph_or_digest
            if isinstance(graph_or_digest, int)
            else graph_digest(graph_or_digest)
        )
        invalidate_graph_layouts(digest)
        with self._lock:
            members = self._by_graph.pop(digest, set())
            for entry_digest in members:
                self._entries.pop(entry_digest, None)
            self.invalidations += len(members)
            dropped = len(members)
        if dropped:
            logger.warning(
                "invalidated %d cached world batch(es) for graph digest %d",
                dropped,
                digest,
            )
            tel = current_telemetry()
            if tel.enabled:
                tel.count(f"{self._metric_prefix}.invalidations", dropped)
        return dropped

    def clear(self) -> None:
        """Drop every entry and reset all counters."""
        with self._lock:
            self._entries.clear()
            self._by_graph.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.invalidations = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: WorldKey) -> bool:
        with self._lock:
            return key.digest in self._entries

    def keys(self) -> "list[WorldKey]":
        """Cached keys, least recently used first (for tests/diagnostics)."""
        with self._lock:
            return [key for key, _ in self._entries.values()]

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when no lookups).

        Both counters are snapshotted under the lock so a concurrent
        reader always sees a consistent ratio — reading ``hits`` and
        ``misses`` in two unlocked steps can interleave with a writer
        and report a rate computed from two different moments (the lock
        is re-entrant, so :meth:`stats` may call this while holding it).
        """
        with self._lock:
            hits, misses = self.hits, self.misses
        total = hits + misses
        return hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Hit/miss/eviction statistics for reporting (one consistent view)."""
        with self._lock:
            return {
                "entries": float(len(self._entries)),
                "hits": float(self.hits),
                "misses": float(self.misses),
                "evictions": float(self.evictions),
                "invalidations": float(self.invalidations),
                "hit_rate": self.hit_rate,
                "cached_worlds": float(
                    sum(batch.n_samples for _, batch in self._entries.values())
                ),
            }


#: Accepted forms of a cache specification: ``None`` (process-wide
#: default), ``0`` (caching disabled), a positive entry bound, or an
#: instance to share across evaluators.
CacheLike = Union[None, int, WorldCache]

def get_default_world_cache() -> Optional[WorldCache]:
    """Return the cache every unspecified ``cache=None`` spec resolves to.

    Resolution order: the innermost active :func:`repro.session` (which
    may pin a private cache, a shared instance, or ``None`` = caching
    disabled) → ``repro.runtime.defaults.world_cache``, lazily creating
    the shared process-wide :class:`WorldCache` on first use.  Sharing
    that default instance is what lets successive batch calls (e.g.
    repeated figure runs in one process) reuse each other's sampled
    worlds.  A positive integer assigned to the store directly is
    normalized once into a sized :class:`WorldCache` (mirroring the
    executor store); to *disable* caching use a scoped
    ``repro.session(world_cache=0)`` — the store itself cannot express
    "off".
    """
    effective = current_effective()
    if effective is not None and effective.world_cache is not UNSET:
        return effective.world_cache
    # lazy creation and raw-spec normalization happen once (shared lock in
    # _runtime_state), so concurrent first resolutions share one instance
    return normalize_store_field(
        "world_cache",
        lambda value: not isinstance(value, WorldCache),
        _normalize_stored_cache,
    )


def _normalize_stored_cache(stored) -> WorldCache:
    if stored is None:
        return WorldCache()
    if isinstance(stored, int) and not isinstance(stored, bool) and stored > 0:
        return WorldCache(max_entries=stored)
    raise TypeError(
        f"repro.runtime.defaults.world_cache must be a WorldCache, a positive "
        f"entry bound, or None, got {stored!r}; use "
        f"repro.session(world_cache=0) to disable caching in a scope"
    )


def set_default_world_cache(cache: Optional[WorldCache]) -> Optional[WorldCache]:
    """Deprecated shim over ``repro.runtime.defaults.world_cache``.

    Returns the previously stored default, mirroring the legacy
    contract.  Prefer ``with repro.session(world_cache=...)`` for scoped
    configuration (the session then also owns a private cache's
    lifecycle), or assign ``repro.runtime.defaults.world_cache``
    directly.  Pass ``None`` to reset to lazy default creation.
    """
    warn_deprecated(
        "repro.service.set_default_world_cache()",
        'use "with repro.session(world_cache=...)" for scoped configuration, '
        "or assign repro.runtime.defaults.world_cache for a process-wide default",
    )
    previous = _runtime_defaults.world_cache
    _runtime_defaults.world_cache = cache
    return previous


def resolve_cache(cache: CacheLike) -> Optional[WorldCache]:
    """Resolve a cache spec: default, disabled (``0``), sized, or instance."""
    if cache is None:
        return get_default_world_cache()
    if isinstance(cache, WorldCache):
        return cache
    if isinstance(cache, bool):
        raise TypeError("cache must be an entry bound or WorldCache, not bool")
    if isinstance(cache, int):
        if cache < 0:
            raise ValueError(f"cache size must be >= 0, got {cache!r}")
        return None if cache == 0 else WorldCache(max_entries=cache)
    raise TypeError(f"cannot interpret {cache!r} as a world cache")


def world_key_source_repr(source: object) -> str:
    """Canonical ``repr`` of a source vertex for :class:`WorldKey` fields."""
    return repr(source)


__all__ = [
    "CacheLike",
    "WorldCache",
    "WorldKey",
    "get_default_world_cache",
    "resolve_cache",
    "set_default_world_cache",
    "world_key_source_repr",
]

"""Request/result value objects of the batched query service.

A :class:`QueryRequest` describes one question a client wants answered
about an uncertain graph — an expected-flow estimate, a two-terminal
reachability, or the per-vertex reachability of an edge-induced
component — together with everything that pins the answer down
deterministically: sample count, integer seed, and (optionally) a
backend override and an edge restriction.  Requests of *mixed* kinds can
travel in one batch; the planner groups them by their shared sampling
work, not by kind.

Seeds are plain integers rather than the library-wide ``SeedLike``:
the service's whole point is that the answer to a request is a pure
function of its content (that is what makes world batches cacheable and
batched answers bit-for-bit equal to single-query estimator calls), and
a live generator has hidden state that cannot be content-addressed.

The module also defines the JSONL wire format used by the CLI's
``batch`` command — one JSON object per line::

    {"kind": "expected_flow", "query": 0, "n_samples": 500, "seed": 7}
    {"kind": "pair_reachability", "source": 0, "target": 9, "n_samples": 500, "seed": 7}
    {"kind": "component_reachability", "anchor": 1, "vertices": [2, 3],
     "edges": [[1, 2], [2, 3], [3, 1]], "n_samples": 200, "seed": 3}

Optional per-request fields: ``seed``, ``n_samples`` (alias
``samples``), ``backend``, ``include_query`` (expected flow only) and
``edges`` (an edge restriction for flow/pair queries; the order of the
pairs is significant — it is the order edge flips are drawn in).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.reachability.estimators import FlowEstimate, ReachabilityEstimate
from repro.types import Edge, VertexId, as_edge

#: The three query kinds a batch may mix.
EXPECTED_FLOW = "expected_flow"
PAIR_REACHABILITY = "pair_reachability"
COMPONENT_REACHABILITY = "component_reachability"

QUERY_KINDS: Tuple[str, ...] = (
    EXPECTED_FLOW,
    PAIR_REACHABILITY,
    COMPONENT_REACHABILITY,
)

#: Accepted spellings of each kind in the JSONL wire format.
_KIND_ALIASES: Dict[str, str] = {
    EXPECTED_FLOW: EXPECTED_FLOW,
    "flow": EXPECTED_FLOW,
    PAIR_REACHABILITY: PAIR_REACHABILITY,
    "pair": PAIR_REACHABILITY,
    "reachability": PAIR_REACHABILITY,
    COMPONENT_REACHABILITY: COMPONENT_REACHABILITY,
    "component": COMPONENT_REACHABILITY,
}


@dataclass(frozen=True)
class QueryRequest:
    """One deterministic query against an uncertain graph.

    Attributes
    ----------
    kind:
        One of :data:`QUERY_KINDS`.
    source:
        The anchoring vertex: the query vertex for expected flow, the
        source for pair reachability, the articulation/anchor vertex for
        component reachability.
    target:
        Pair reachability only — the other terminal.
    targets:
        Component reachability only — the component's vertices (the
        anchor itself may be listed; it is excluded from the answer,
        matching :func:`repro.reachability.monte_carlo.monte_carlo_component_reachability`).
    edges:
        Edge restriction.  Required for component queries (the component
        edge set); optional for flow/pair queries (``None`` samples the
        whole graph).  **Order is significant**: flips are drawn in edge
        order, so the same set in a different order draws different
        worlds.
    n_samples:
        Possible worlds behind the answer (positive integer).
    seed:
        Integer seed; together with the backend and shard plan it pins
        the answer bit-for-bit.
    backend:
        Optional backend-name override for this request (``None`` defers
        to the evaluator's backend).
    include_query:
        Expected flow only — whether the query vertex's own weight
        counts towards the flow.
    """

    kind: str
    source: VertexId
    target: Optional[VertexId] = None
    targets: Tuple[VertexId, ...] = ()
    edges: Optional[Tuple[Edge, ...]] = None
    n_samples: int = 1000
    seed: int = 0
    backend: Optional[str] = None
    include_query: bool = False

    def __post_init__(self) -> None:
        if self.kind not in QUERY_KINDS:
            raise ValueError(
                f"unknown query kind {self.kind!r}; expected one of {QUERY_KINDS}"
            )
        if isinstance(self.n_samples, bool) or not isinstance(
            self.n_samples, (int, np.integer)
        ):
            raise TypeError(f"n_samples must be an integer, got {self.n_samples!r}")
        if self.n_samples <= 0:
            raise ValueError(f"n_samples must be positive, got {self.n_samples!r}")
        if isinstance(self.seed, bool) or not isinstance(self.seed, (int, np.integer)):
            raise TypeError(
                f"seed must be a plain integer (service answers are content-addressed), "
                f"got {self.seed!r}"
            )
        object.__setattr__(self, "n_samples", int(self.n_samples))
        object.__setattr__(self, "seed", int(self.seed))
        if self.edges is not None:
            object.__setattr__(
                self, "edges", tuple(as_edge(edge) for edge in self.edges)
            )
        object.__setattr__(self, "targets", tuple(self.targets))
        if self.kind == PAIR_REACHABILITY:
            if self.target is None:
                raise ValueError("pair_reachability requests need a target vertex")
        elif self.target is not None:
            raise ValueError(f"{self.kind} requests do not take a target vertex")
        if self.kind == COMPONENT_REACHABILITY:
            if self.edges is None:
                raise ValueError("component_reachability requests need the component edges")
            if not self.targets:
                raise ValueError("component_reachability requests need the component vertices")
        elif self.targets:
            raise ValueError(f"{self.kind} requests do not take a vertex list")


@dataclass(frozen=True)
class QueryResult:
    """The answer to one :class:`QueryRequest`.

    Exactly one of the three payload fields is populated, matching the
    request kind; ``value`` condenses the scalar kinds for quick access.

    Attributes
    ----------
    request:
        The request this result answers.
    flow:
        Expected-flow payload (:class:`FlowEstimate`).
    reachability:
        Pair-reachability payload (:class:`ReachabilityEstimate`).
    probabilities:
        Component-reachability payload (per-vertex probabilities).
    n_samples:
        Worlds behind the answer.
    from_cache:
        True when the answer was served from a cached world batch
        instead of fresh sampling.
    world_digest:
        Digest of the shared world batch the answer was gathered from
        (0 for trivial answers that needed no sampling); requests with
        equal digests were answered from the same worlds.
    """

    request: QueryRequest
    flow: Optional[FlowEstimate] = None
    reachability: Optional[ReachabilityEstimate] = None
    probabilities: Optional[Dict[VertexId, float]] = field(default=None)
    n_samples: int = 0
    from_cache: bool = False
    world_digest: int = 0

    @property
    def kind(self) -> str:
        """The answered query kind."""
        return self.request.kind

    @property
    def value(self) -> Optional[float]:
        """Scalar answer: expected flow or pair probability (``None`` for components)."""
        if self.flow is not None:
            return self.flow.expected_flow
        if self.reachability is not None:
            return self.reachability.probability
        return None


# ----------------------------------------------------------------------
# JSONL wire format
# ----------------------------------------------------------------------
def _resolve_vertex(token: object, graph) -> object:
    """Map a JSON vertex token onto a graph vertex id (int when possible)."""
    if graph is None:
        return token
    if graph.has_vertex(token):
        return token
    try:
        candidate = int(token)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return token
    return candidate if graph.has_vertex(candidate) else token


def _edge_pairs(raw: Iterable[object], graph) -> Tuple[Edge, ...]:
    edges = []
    for pair in raw:
        if not isinstance(pair, (list, tuple)) or len(pair) != 2:
            raise ValueError(f"edge entries must be [u, v] pairs, got {pair!r}")
        u, v = (_resolve_vertex(token, graph) for token in pair)
        edges.append(Edge(u, v))
    return tuple(edges)


def request_from_dict(
    payload: Mapping[str, object],
    graph=None,
    default_n_samples: int = 1000,
    default_seed: int = 0,
) -> QueryRequest:
    """Build a :class:`QueryRequest` from one parsed JSONL object.

    ``graph`` (optional) resolves vertex tokens the way the CLI does —
    a token names an existing vertex directly, or through its integer
    form.  Unknown keys are rejected loudly so typos do not silently
    fall back to defaults.
    """
    payload = dict(payload)
    raw_kind = payload.pop("kind", None)
    if not isinstance(raw_kind, str) or raw_kind not in _KIND_ALIASES:
        raise ValueError(
            f"request kind must be one of {sorted(set(_KIND_ALIASES))}, got {raw_kind!r}"
        )
    kind = _KIND_ALIASES[raw_kind]

    def pop_aliased(primary: str, alias: str, default: object) -> object:
        # a request naming both spellings is ambiguous — reject it loudly
        # instead of silently discarding one of the two values
        if primary in payload and alias in payload:
            raise ValueError(
                f"request sets both {primary!r} and its alias {alias!r}; use one"
            )
        if alias in payload:
            return payload.pop(alias)
        return payload.pop(primary, default)

    n_samples = pop_aliased("n_samples", "samples", default_n_samples)
    seed = payload.pop("seed", default_seed)
    backend = payload.pop("backend", None)
    include_query = bool(payload.pop("include_query", False))

    source_key = {"expected_flow": "query", "pair_reachability": "source",
                  "component_reachability": "anchor"}[kind]
    raw_source = (
        payload.pop(source_key, None)
        if source_key == "source"
        else pop_aliased(source_key, "source", None)
    )
    if raw_source is None:
        raise ValueError(f"{kind} requests need a {source_key!r} vertex")
    source = _resolve_vertex(raw_source, graph)

    target = None
    targets: Tuple[VertexId, ...] = ()
    if kind == PAIR_REACHABILITY:
        raw_target = payload.pop("target", None)
        if raw_target is None:
            raise ValueError("pair_reachability requests need a 'target' vertex")
        target = _resolve_vertex(raw_target, graph)
    if kind == COMPONENT_REACHABILITY:
        raw_vertices = payload.pop("vertices", None)
        if not isinstance(raw_vertices, (list, tuple)) or not raw_vertices:
            raise ValueError("component_reachability requests need a 'vertices' list")
        targets = tuple(_resolve_vertex(token, graph) for token in raw_vertices)

    edges: Optional[Tuple[Edge, ...]] = None
    raw_edges = payload.pop("edges", None)
    if raw_edges is not None:
        edges = _edge_pairs(raw_edges, graph)

    if payload:
        raise ValueError(f"unknown request fields {sorted(payload)!r} for kind {kind!r}")
    return QueryRequest(
        kind=kind,
        source=source,
        target=target,
        targets=targets,
        edges=edges,
        n_samples=n_samples,  # type: ignore[arg-type]
        seed=seed,  # type: ignore[arg-type]
        backend=backend,  # type: ignore[arg-type]
        include_query=include_query,
    )


def request_to_dict(request: QueryRequest) -> Dict[str, object]:
    """Serialise a request back into its JSONL object form (round-trips)."""
    payload: Dict[str, object] = {"kind": request.kind}
    if request.kind == EXPECTED_FLOW:
        payload["query"] = request.source
        if request.include_query:
            payload["include_query"] = True
    elif request.kind == PAIR_REACHABILITY:
        payload["source"] = request.source
        payload["target"] = request.target
    else:
        payload["anchor"] = request.source
        payload["vertices"] = list(request.targets)
    if request.edges is not None:
        payload["edges"] = [[edge.u, edge.v] for edge in request.edges]
    payload["n_samples"] = request.n_samples
    payload["seed"] = request.seed
    if request.backend is not None:
        payload["backend"] = request.backend
    return payload


def result_to_dict(result: QueryResult) -> Dict[str, object]:
    """Flatten a result into a JSON-serialisable object (one JSONL line)."""
    request = result.request
    payload: Dict[str, object] = {
        "kind": result.kind,
        "seed": request.seed,
        "n_samples": result.n_samples,
        "from_cache": result.from_cache,
    }
    if result.kind == EXPECTED_FLOW:
        payload["query"] = request.source
        assert result.flow is not None
        payload["expected_flow"] = result.flow.expected_flow
        payload["variance"] = result.flow.variance
        payload["n_reachable"] = len(result.flow.reachability)
    elif result.kind == PAIR_REACHABILITY:
        payload["source"] = request.source
        payload["target"] = request.target
        assert result.reachability is not None
        payload["probability"] = result.reachability.probability
        payload["successes"] = result.reachability.successes
    else:
        payload["anchor"] = request.source
        assert result.probabilities is not None
        payload["probabilities"] = {
            str(vertex): probability
            for vertex, probability in result.probabilities.items()
        }
    return payload


__all__ = [
    "COMPONENT_REACHABILITY",
    "EXPECTED_FLOW",
    "PAIR_REACHABILITY",
    "QUERY_KINDS",
    "QueryRequest",
    "QueryResult",
    "request_from_dict",
    "request_to_dict",
    "result_to_dict",
]

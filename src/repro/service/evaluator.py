"""The batched multi-query evaluation service.

:class:`BatchEvaluator` is the request-oriented front door of the
estimation stack: hand it an uncertain graph and a mixed batch of
:class:`~repro.service.requests.QueryRequest` objects, and it

1. **plans** — groups the requests by shared sampling work
   (:class:`~repro.service.planner.QueryPlanner`);
2. **caches** — looks each group's world key up in a digest-keyed
   :class:`~repro.service.cache.WorldCache`, so successive batches (and
   successive calls) reuse sampled worlds across requests;
3. **samples** — on a miss, draws one shared
   :class:`~repro.reachability.engine.WorldBatch` per group through the
   ordinary :class:`~repro.reachability.engine.SamplingEngine`;
4. **answers** — aggregates every member request from the group's batch
   with the same aggregation functions the single-query estimators use.

The determinism contract carries over verbatim: a batched answer is
bit-for-bit identical to the corresponding single-query estimator call
for the same ``(seed, backend, shard plan)`` — the batch only changes
*when* the worlds are drawn, never *which* worlds or how they are
aggregated.

Typical use::

    from repro.service import BatchEvaluator, QueryRequest

    evaluator = BatchEvaluator(cache=128)
    requests = [
        QueryRequest(kind="expected_flow", source=0, n_samples=1000, seed=7),
        QueryRequest(kind="pair_reachability", source=0, target=9,
                     n_samples=1000, seed=7),
    ]
    results = evaluator.evaluate(graph, requests)   # one sampled batch, two answers
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.exceptions import VertexNotFoundError
from repro.graph.uncertain_graph import UncertainGraph
from repro.parallel.executor import (
    ExecutorLike,
    SamplingExecutor,
    get_default_executor,
    make_executor,
)
from repro.parallel.plan import get_default_shard_size
from repro.reachability.backends import BackendLike, make_backend
from repro.reachability.engine import (
    SamplingEngine,
    WorldBatch,
    aggregate_component_reachability,
    aggregate_expected_flow,
    aggregate_pair_reachability,
)
from repro.reachability.estimators import ReachabilityEstimate
from repro.service.cache import (
    CacheLike,
    WorldCache,
    get_default_world_cache,
    resolve_cache,
)
from repro.service.planner import QueryGroup, QueryPlan, QueryPlanner
from repro.service.requests import (
    COMPONENT_REACHABILITY,
    EXPECTED_FLOW,
    PAIR_REACHABILITY,
    QueryRequest,
    QueryResult,
)
from repro.telemetry import current_telemetry


def validate_request(graph: UncertainGraph, request: QueryRequest) -> None:
    """Mirror the single-query estimators' vertex validation.

    :meth:`SamplingEngine.expected_flow` and ``pair_reachability``
    reject unknown query vertices loudly; a batched request must not
    degrade that into a silent all-zero answer.  (Component queries
    match their estimator too: bogus edges fail the probability
    lookup during sampling.)  Public so admission layers — the serving
    tier rejects a bad request *before* it reaches the coalescing
    queue — apply exactly the evaluator's rules.
    """
    if request.kind == EXPECTED_FLOW and not graph.has_vertex(request.source):
        raise VertexNotFoundError(request.source)
    if request.kind == PAIR_REACHABILITY:
        for vertex in (request.source, request.target):
            if not graph.has_vertex(vertex):
                raise VertexNotFoundError(vertex)


class BatchEvaluator:
    """Serves batches of mixed reachability/flow queries from shared worlds.

    Parameters
    ----------
    backend:
        Default sampling backend for requests without an override
        (``None`` defers to the active :func:`repro.session` /
        library-wide default backend).
    executor:
        Sharded-sampling executor spec (see :mod:`repro.parallel`):
        ``None`` defers to the active session / process-wide default, an
        integer worker count builds an executor the evaluator *owns*
        (closed by :meth:`close`), an instance is shared and left open.
    shard_size:
        Worlds per shard when an executor is active; part of every
        world key (the sharded and unsharded streams differ).
    cache:
        World-cache spec: ``None`` shares the process-wide default
        cache, ``0`` disables caching, a positive integer builds a
        private cache with that entry bound, an instance is shared.
    """

    def __init__(
        self,
        backend: BackendLike = None,
        executor: ExecutorLike = None,
        shard_size: Optional[int] = None,
        cache: CacheLike = None,
    ) -> None:
        self._backend_spec = backend
        self._owns_executor = isinstance(executor, int) and not isinstance(executor, bool)
        self._executor: Optional[SamplingExecutor] = make_executor(executor)
        self.shard_size = shard_size
        # a None spec tracks the ambient default cache *lazily* (like the
        # backend spec), so the active repro.session — and changes to
        # runtime.defaults.world_cache — affect existing evaluators and no
        # replaced cache is pinned alive; explicit specs are resolved once
        self._use_default_cache = cache is None
        self._cache: Optional[WorldCache] = None if cache is None else resolve_cache(cache)
        self.planner = QueryPlanner()
        #: the QueryPlan of the most recent evaluate/warm call (diagnostics)
        self.last_plan: Optional[QueryPlan] = None
        #: world batches sampled (cache misses + uncached groups)
        self.batches_sampled = 0
        #: world batches served from the cache
        self.batches_reused = 0

    @property
    def cache(self) -> Optional[WorldCache]:
        """The active world cache (``None`` when caching is disabled)."""
        if self._use_default_cache:
            return get_default_world_cache()
        return self._cache

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cache = "off" if self.cache is None else len(self.cache)
        return f"<BatchEvaluator backend={self._backend_name()!r} cache={cache}>"

    # ------------------------------------------------------------------
    # resolution helpers
    # ------------------------------------------------------------------
    def _backend_name(self) -> str:
        """Resolve the default backend spec to a registry name (late, so
        process-wide default changes are honoured per call)."""
        return make_backend(self._backend_spec).name

    def _effective_executor(self) -> Optional[SamplingExecutor]:
        if self._executor is not None:
            return self._executor
        return get_default_executor()

    def _shard_signature(self, executor: Optional[SamplingExecutor]) -> Optional[int]:
        """The shard-plan component of world keys: ``None`` = unsharded."""
        if executor is None:
            return None
        return int(self.shard_size) if self.shard_size is not None else get_default_shard_size()

    # ------------------------------------------------------------------
    # planning and sampling
    # ------------------------------------------------------------------
    def plan(self, graph: UncertainGraph, requests: Sequence[QueryRequest]) -> QueryPlan:
        """Return the sharing plan for a batch without executing it."""
        executor = self._effective_executor()
        return self.planner.plan(
            graph,
            requests,
            default_backend=self._backend_name(),
            shard_size=self._shard_signature(executor),
        )

    def _group_batch(
        self,
        graph: UncertainGraph,
        group: QueryGroup,
        executor: Optional[SamplingExecutor],
    ) -> tuple[WorldBatch, bool]:
        """Fetch the group's world batch from the cache or sample it."""
        cache = self.cache  # resolve once so get and put hit the same instance
        tel = current_telemetry()
        if cache is not None:
            cached = cache.get(group.key)
            if cached is not None:
                self.batches_reused += 1
                if tel.enabled:
                    tel.count("service.batches_reused")
                return cached, True
        engine = SamplingEngine(
            group.key.backend, executor=executor, shard_size=self.shard_size
        )
        batch = engine.sample_worlds(
            graph,
            group.source,
            group.key.n_samples,
            seed=group.key.seed,
            edges=None if group.edges is None else list(group.edges),
        )
        self.batches_sampled += 1
        if tel.enabled:
            tel.count("service.batches_sampled")
        if cache is not None:
            cache.put(group.key, batch)
        return batch, False

    # ------------------------------------------------------------------
    # answering
    # ------------------------------------------------------------------
    _validate = staticmethod(validate_request)

    @staticmethod
    def _trivial_result(request: QueryRequest) -> QueryResult:
        """Pair query with source == target: certain, no sampling needed.

        Mirrors :meth:`SamplingEngine.pair_reachability`, which pins the
        estimate at probability 1.0 with the full requested sample count.
        """
        return QueryResult(
            request=request,
            reachability=ReachabilityEstimate(
                probability=1.0,
                n_samples=request.n_samples,
                successes=request.n_samples,
            ),
            n_samples=request.n_samples,
            from_cache=False,
            world_digest=0,
        )

    def _answer(
        self,
        graph: UncertainGraph,
        request: QueryRequest,
        batch: WorldBatch,
        from_cache: bool,
        world_digest: int,
    ) -> QueryResult:
        if request.kind == EXPECTED_FLOW:
            flow = aggregate_expected_flow(
                graph, batch, include_query=request.include_query
            )
            return QueryResult(
                request=request,
                flow=flow,
                n_samples=batch.n_samples,
                from_cache=from_cache,
                world_digest=world_digest,
            )
        if request.kind == COMPONENT_REACHABILITY:
            targets = [vertex for vertex in request.targets if vertex != request.source]
            return QueryResult(
                request=request,
                probabilities=aggregate_component_reachability(batch, targets),
                n_samples=batch.n_samples,
                from_cache=from_cache,
                world_digest=world_digest,
            )
        return QueryResult(
            request=request,
            reachability=aggregate_pair_reachability(batch, request.target),
            n_samples=batch.n_samples,
            from_cache=from_cache,
            world_digest=world_digest,
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def evaluate(
        self, graph: UncertainGraph, requests: Iterable[QueryRequest]
    ) -> List[QueryResult]:
        """Answer a mixed batch of requests; results align with input order."""
        request_list = list(requests)
        tel = current_telemetry()
        if not tel.enabled:
            return self._evaluate_batch(graph, request_list)
        with tel.span("service.evaluate", n_requests=len(request_list)) as span:
            results = self._evaluate_batch(graph, request_list)
            plan = self.last_plan
            if plan is not None:
                span.set(
                    n_groups=len(plan.groups),
                    amortization=round(plan.amortization, 3),
                )
            tel.count("service.requests", len(request_list))
            return results

    def _evaluate_batch(
        self, graph: UncertainGraph, request_list: List[QueryRequest]
    ) -> List[QueryResult]:
        for request in request_list:
            self._validate(graph, request)
        results: List[Optional[QueryResult]] = [None] * len(request_list)
        executor = self._effective_executor()
        plan = self.planner.plan(
            graph,
            request_list,
            default_backend=self._backend_name(),
            shard_size=self._shard_signature(executor),
        )
        self.last_plan = plan
        for position, request in plan.trivial:
            results[position] = self._trivial_result(request)
        for group in plan.groups:
            batch, from_cache = self._group_batch(graph, group, executor)
            digest = group.key.digest
            for position, request in group.requests:
                results[position] = self._answer(
                    graph, request, batch, from_cache, digest
                )
        return [result for result in results if result is not None]

    def evaluate_one(self, graph: UncertainGraph, request: QueryRequest) -> QueryResult:
        """Answer a single request (still cache-aware)."""
        return self.evaluate(graph, [request])[0]

    def warm(
        self, graph: UncertainGraph, requests: Iterable[QueryRequest]
    ) -> Dict[str, float]:
        """Pre-sample every world batch a request batch will need.

        Plans the batch and fills the cache for every group that is not
        already resident, without aggregating any answers.  Returns the
        cache statistics afterwards (an empty dict when caching is
        disabled — warming is then a no-op, there is nowhere to keep the
        batches).
        """
        cache = self.cache
        if cache is None:
            return {}
        request_list = list(requests)
        tel = current_telemetry()
        if not tel.enabled:
            self._warm_batch(graph, request_list)
            return cache.stats()
        with tel.span("service.warm", n_requests=len(request_list)) as span:
            self._warm_batch(graph, request_list)
            plan = self.last_plan
            if plan is not None:
                span.set(n_groups=len(plan.groups))
        return cache.stats()

    def _warm_batch(
        self, graph: UncertainGraph, request_list: List[QueryRequest]
    ) -> None:
        for request in request_list:
            self._validate(graph, request)
        executor = self._effective_executor()
        plan = self.planner.plan(
            graph,
            request_list,
            default_backend=self._backend_name(),
            shard_size=self._shard_signature(executor),
        )
        self.last_plan = plan
        for group in plan.groups:
            self._group_batch(graph, group, executor)

    def cache_stats(self) -> Dict[str, float]:
        """Statistics of the active cache (empty dict when disabled)."""
        return {} if self.cache is None else self.cache.stats()

    def close(self) -> None:
        """Release the evaluator-owned executor (idempotent).

        Only executors the evaluator built itself (integer specs) are
        closed; shared instances and the process-wide default are left
        running for their owners.
        """
        if self._owns_executor and self._executor is not None:
            self._executor.close()
            self._executor = None

    def __enter__(self) -> "BatchEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["BatchEvaluator", "validate_request"]

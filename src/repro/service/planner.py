"""Query planner: group a mixed batch of requests by shared sampling work.

Two requests can be answered from the *same* batch of possible worlds
exactly when the batch they need is the same pure function — same graph
content, same (ordered) edge restriction, same source vertex, same
backend, seed, sample count and shard plan.  The planner partitions a
request list into such groups, so the evaluator draws **one**
:class:`~repro.reachability.engine.WorldBatch` per group and answers
every member with a column gather.

Notably *absent* from the group key:

* the query **kind** — an expected-flow query and sixty-three pair
  queries anchored at the same source share one batch; aggregation is
  per-request;
* ``include_query`` — a pure aggregation choice;
* **extra target vertices** — a target that is not incident to any
  sampled edge is reached in no world, and the aggregations treat a
  missing column as exactly that, so pooled batches are drawn without
  per-request extra columns and remain interchangeable with the
  single-query batches (this is what keeps batched answers bit-for-bit
  equal to the one-at-a-time estimator calls).

Pair queries whose source equals their target need no sampling at all
(the estimators answer probability 1.0 without drawing worlds); the
planner routes them past the groups as *trivial* requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.digest import edge_sequence_digest
from repro.graph.uncertain_graph import UncertainGraph
from repro.service.cache import WorldKey, world_key_source_repr
from repro.service.requests import PAIR_REACHABILITY, QueryRequest
from repro.telemetry import current_telemetry
from repro.types import Edge


@dataclass(frozen=True)
class QueryGroup:
    """One batch-sized unit of work: a world key plus its member requests.

    ``requests`` holds ``(position, request)`` pairs, where ``position``
    is the request's index in the original batch — the evaluator scatters
    answers back into input order.
    """

    key: WorldKey
    source: object
    edges: Optional[Tuple[Edge, ...]]
    requests: Tuple[Tuple[int, QueryRequest], ...]

    @property
    def n_requests(self) -> int:
        """Number of requests answered from this group's batch."""
        return len(self.requests)


@dataclass(frozen=True)
class QueryPlan:
    """The planner's output: sampling groups plus sampling-free requests."""

    groups: Tuple[QueryGroup, ...]
    trivial: Tuple[Tuple[int, QueryRequest], ...]
    graph_digest: int

    @property
    def n_requests(self) -> int:
        """Total number of planned requests."""
        return sum(group.n_requests for group in self.groups) + len(self.trivial)

    @property
    def amortization(self) -> float:
        """Requests per sampled batch (1.0 means nothing was shared)."""
        if not self.groups:
            return 1.0
        return sum(group.n_requests for group in self.groups) / len(self.groups)


class QueryPlanner:
    """Groups requests by ``(graph digest, edges, source, backend, seed, shard plan)``."""

    def plan(
        self,
        graph: UncertainGraph,
        requests: Sequence[QueryRequest],
        default_backend: str,
        shard_size: Optional[int],
    ) -> QueryPlan:
        """Partition ``requests`` into shared-batch groups.

        Parameters
        ----------
        graph:
            The graph every request in the batch runs against; its
            content digest anchors every group key.
        requests:
            The mixed-kind request batch, in client order.
        default_backend:
            Backend name a request without an override resolves to
            (part of the key: streams are pinned identical across the
            built-in backends, but a third-party backend may not be).
        shard_size:
            ``None`` when sampling is unsharded, else the resolved
            worlds-per-shard of the active executor — the two streams
            differ and must not share batches.
        """
        # memoized on the graph: repeated batches against one graph pay
        # the O(V + E) content hash once, not once per plan() call
        digest = graph.content_digest()
        groups: Dict[int, List[Tuple[int, QueryRequest]]] = {}
        keys: Dict[int, WorldKey] = {}
        payloads: Dict[int, Tuple[object, Optional[Tuple[Edge, ...]]]] = {}
        trivial: List[Tuple[int, QueryRequest]] = []
        for position, request in enumerate(requests):
            if request.kind == PAIR_REACHABILITY and request.source == request.target:
                trivial.append((position, request))
                continue
            key = WorldKey(
                graph_digest=digest,
                edges_digest=edge_sequence_digest(request.edges),
                source_repr=world_key_source_repr(request.source),
                backend=request.backend or default_backend,
                seed=request.seed,
                n_samples=request.n_samples,
                shard_size=shard_size,
            )
            key_digest = key.digest
            if key_digest not in groups:
                groups[key_digest] = []
                keys[key_digest] = key
                payloads[key_digest] = (request.source, request.edges)
            groups[key_digest].append((position, request))
        plan = QueryPlan(
            groups=tuple(
                QueryGroup(
                    key=keys[key_digest],
                    source=payloads[key_digest][0],
                    edges=payloads[key_digest][1],
                    requests=tuple(members),
                )
                for key_digest, members in groups.items()
            ),
            trivial=tuple(trivial),
            graph_digest=digest,
        )
        tel = current_telemetry()
        if tel.enabled:
            tel.count("service.plan_calls")
            tel.count("service.planned_requests", len(requests))
            tel.count("service.planned_groups", len(plan.groups))
            if plan.trivial:
                tel.count("service.trivial_requests", len(plan.trivial))
        return plan


__all__ = ["QueryGroup", "QueryPlan", "QueryPlanner"]

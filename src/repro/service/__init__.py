"""Batched multi-query evaluation service with digest-keyed world caching.

The estimators in :mod:`repro.reachability` answer one query at a time;
this subpackage is the request-oriented layer that serves *many*
concurrent queries by amortizing their dominant cost — possible-world
sampling — across everything that can share it:

* :mod:`repro.service.requests` — the :class:`QueryRequest` /
  :class:`QueryResult` API (expected flow, pair reachability, component
  reachability — mixed in one batch) and the JSONL wire format of the
  CLI's ``batch`` command;
* :mod:`repro.service.planner` — :class:`QueryPlanner` groups a batch by
  ``(graph digest, edge restriction, source, backend, seed, n_samples,
  shard plan)`` so every group is answered from **one** shared
  :class:`~repro.reachability.engine.WorldBatch` via bulk column
  gathers;
* :mod:`repro.service.cache` — :class:`WorldCache`, a bounded LRU keyed
  by a stable digest of the graph content (via :mod:`repro.digest`, the
  same hashing scheme as the F-tree memo), reusing sampled batches
  across successive batches and runs, with hit/miss/eviction statistics
  and explicit invalidation;
* :mod:`repro.service.evaluator` — :class:`BatchEvaluator`, the front
  door tying the three together.

The subsystem inherits the library's determinism contract unchanged:
every batched answer is bit-for-bit identical to the corresponding
single-query estimator call for the same ``(seed, backend, shard
plan)``.
"""

from repro.service.cache import (
    CacheLike,
    WorldCache,
    WorldKey,
    get_default_world_cache,
    resolve_cache,
    set_default_world_cache,
)
from repro.service.evaluator import BatchEvaluator, validate_request
from repro.service.planner import QueryGroup, QueryPlan, QueryPlanner
from repro.service.requests import (
    COMPONENT_REACHABILITY,
    EXPECTED_FLOW,
    PAIR_REACHABILITY,
    QUERY_KINDS,
    QueryRequest,
    QueryResult,
    request_from_dict,
    request_to_dict,
    result_to_dict,
)

__all__ = [
    "BatchEvaluator",
    "CacheLike",
    "COMPONENT_REACHABILITY",
    "EXPECTED_FLOW",
    "PAIR_REACHABILITY",
    "QUERY_KINDS",
    "QueryGroup",
    "QueryPlan",
    "QueryPlanner",
    "QueryRequest",
    "QueryResult",
    "WorldCache",
    "WorldKey",
    "get_default_world_cache",
    "request_from_dict",
    "request_to_dict",
    "resolve_cache",
    "result_to_dict",
    "set_default_world_cache",
    "validate_request",
]
